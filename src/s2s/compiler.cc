#include "s2s/compiler.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/logging.hh"
#include "s2s/clex.hh"

namespace mealib::s2s {

namespace {

/** One pending source rewrite. */
struct Edit
{
    std::size_t begin;
    std::size_t end;
    std::string text;
};

/** One call argument with its source span. */
struct Arg
{
    std::string text;
    std::size_t begin = 0;
    std::size_t end = 0;
};

/** A recognized fftwf_plan_guru_dft site. */
struct FftwPlanSite
{
    std::string var;
    long rank = -1; //!< -1 when not a literal
    std::string inSym;
    std::string outSym;
    std::string dir; //!< "-1", "1" or a placeholder
    std::size_t stmtBegin = 0;
    std::size_t stmtEnd = 0;
    unsigned line = 0;
};

/** A recognized fftwf_execute site. */
struct FftwExecSite
{
    std::string var;
    std::size_t stmtBegin = 0;
    std::size_t stmtEnd = 0;
    unsigned line = 0;
};

/** One emitted accelerator-plan site, ordered by source position. */
struct PlanSite
{
    std::size_t pos = 0;
    std::string tdl; //!< this site's TDL item(s)
};

bool
isTypeWord(const std::string &s)
{
    return s == "const" || s == "float" || s == "double" || s == "int" ||
           s == "void" || s == "char" || s == "long" || s == "short" ||
           s == "unsigned" || s == "signed" || s == "struct" ||
           s == "sizeof" || s == "complex" || s == "fftwf_complex";
}

class Translator
{
  public:
    explicit Translator(const std::string &src)
        : src_(src), toks_(clex(src))
    {
    }

    TranslationResult
    run()
    {
        scan();
        groupFftw();
        finalize();
        return std::move(res_);
    }

  private:
    // ----- token utilities ---------------------------------------------

    const CTok &
    tok(std::size_t i) const
    {
        return i < toks_.size() ? toks_[i] : toks_.back();
    }

    /** Index of the ')' matching the '(' at @p open; or npos. */
    std::size_t
    matchParen(std::size_t open) const
    {
        int depth = 0;
        for (std::size_t i = open; i < toks_.size(); ++i) {
            if (tok(i).is("("))
                ++depth;
            else if (tok(i).is(")") && --depth == 0)
                return i;
        }
        return std::string::npos;
    }

    /** Split the tokens between '(' and ')' into depth-0 arguments. */
    std::vector<Arg>
    callArgs(std::size_t open, std::size_t close) const
    {
        std::vector<Arg> args;
        int depth = 0;
        std::size_t start = open + 1;
        for (std::size_t i = open + 1; i <= close; ++i) {
            const CTok &t = tok(i);
            if (t.is("(") || t.is("["))
                ++depth;
            else if (t.is(")") || t.is("]")) {
                if (t.is(")") && i == close && depth == 0) {
                    if (start < i)
                        args.push_back(makeArg(start, i));
                    break;
                }
                --depth;
            } else if (t.is(",") && depth == 0) {
                args.push_back(makeArg(start, i));
                start = i + 1;
            }
        }
        return args;
    }

    Arg
    makeArg(std::size_t first, std::size_t onePast) const
    {
        Arg a;
        a.begin = tok(first).begin;
        a.end = tok(onePast - 1).end;
        a.text = src_.substr(a.begin, a.end - a.begin);
        return a;
    }

    /** Token index of the terminating ';' of the statement at @p i. */
    std::size_t
    stmtEndTok(std::size_t i) const
    {
        int depth = 0;
        for (std::size_t j = i; j < toks_.size(); ++j) {
            if (tok(j).is("(") || tok(j).is("["))
                ++depth;
            else if (tok(j).is(")") || tok(j).is("]"))
                --depth;
            else if (tok(j).is(";") && depth == 0)
                return j;
        }
        return toks_.size() - 1;
    }

    /** Byte offset where the statement containing token @p i begins. */
    std::size_t
    stmtBeginByte(std::size_t i) const
    {
        for (std::size_t j = i; j-- > 0;) {
            const CTok &t = toks_[j];
            if (t.is(";") || t.is("{") || t.is("}") ||
                t.kind == CTokKind::Pragma)
                return t.end;
        }
        return 0;
    }

    /** First plausible buffer identifier inside an argument span. */
    std::string
    firstIdent(std::size_t first, std::size_t onePast) const
    {
        for (std::size_t i = first; i < onePast; ++i) {
            const CTok &t = tok(i);
            if (t.kind == CTokKind::Ident && !isTypeWord(t.text))
                return t.text;
        }
        return "";
    }

    /** Arg token range [first, onePast) for arg index @p k of a call. */
    std::pair<std::size_t, std::size_t>
    argTokens(std::size_t open, std::size_t close, std::size_t k) const
    {
        int depth = 0;
        std::size_t idx = 0, start = open + 1;
        for (std::size_t i = open + 1; i <= close; ++i) {
            const CTok &t = tok(i);
            if (t.is("(") || t.is("["))
                ++depth;
            else if (t.is(")") || t.is("]")) {
                if (t.is(")") && i == close && depth == 0) {
                    if (idx == k)
                        return {start, i};
                    break;
                }
                --depth;
            } else if (t.is(",") && depth == 0) {
                if (idx == k)
                    return {start, i};
                ++idx;
                start = i + 1;
            }
        }
        return {0, 0};
    }

    // ----- value helpers -----------------------------------------------

    /** Literal text, `$ident` placeholder, or a fresh placeholder. */
    std::string
    valueOf(const Arg &a, const char *what, unsigned line)
    {
        // Single literal?
        bool number = !a.text.empty() &&
                      (std::isdigit(static_cast<unsigned char>(
                           a.text[0])) ||
                       (a.text[0] == '-' && a.text.size() > 1));
        if (number && a.text.find_first_of(" \t(") == std::string::npos)
            return a.text;
        // Single identifier?
        bool ident = !a.text.empty() &&
                     (std::isalpha(static_cast<unsigned char>(
                          a.text[0])) ||
                      a.text[0] == '_');
        if (ident &&
            a.text.find_first_not_of("abcdefghijklmnopqrstuvwxyz"
                                     "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                                     "0123456789_") == std::string::npos)
            return "$" + a.text;
        std::string ph = "$" + std::string(what) + "_l" +
                         std::to_string(line);
        note(line, std::string("unresolved ") + what + " expression '" +
                       a.text + "' -> placeholder " + ph);
        return ph;
    }

    void
    note(unsigned line, std::string msg)
    {
        res_.notes.push_back({line, std::move(msg)});
    }

    std::string
    bufferSym(std::size_t open, std::size_t close, std::size_t k,
              unsigned line, const char *what)
    {
        auto [f, e] = argTokens(open, close, k);
        std::string id = f == 0 && e == 0 ? "" : firstIdent(f, e);
        if (id.empty()) {
            std::string ph = std::string(what) + "_l" +
                             std::to_string(line);
            note(line, std::string("no identifiable buffer for ") + what);
            return "$" + ph;
        }
        return "$" + id;
    }

    // ----- main scan -----------------------------------------------------

    void
    scan()
    {
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            const CTok &t = toks_[i];
            if (t.kind == CTokKind::Pragma) {
                if (t.text.find("omp") != std::string::npos &&
                    t.text.find("for") != std::string::npos) {
                    std::size_t after = tryOmpNest(i);
                    if (after != std::string::npos) {
                        // skip tokens inside the consumed nest
                        while (i + 1 < toks_.size() &&
                               toks_[i + 1].begin < after)
                            ++i;
                    }
                }
                continue;
            }
            if (t.kind != CTokKind::Ident || !tok(i + 1).is("("))
                continue;

            if (t.text == "malloc" || t.text == "free") {
                edits_.push_back({t.begin, t.end,
                                  t.text == "malloc"
                                      ? "mealib_mem_alloc"
                                      : "mealib_mem_free"});
                res_.allocRewrites++;
            } else if (t.text == "fftwf_plan_guru_dft") {
                recordFftwPlan(i);
            } else if (t.text == "fftwf_execute") {
                recordFftwExec(i);
            } else if (t.text == "fftwf_destroy_plan") {
                commentStatement(i, "plan destroyed by MEALib runtime");
            } else if (isBareAccelCall(t.text)) {
                handleBareCall(i);
            }
        }
    }

    static bool
    isBareAccelCall(const std::string &name)
    {
        return name == "cblas_saxpy" || name == "cblas_sdot" ||
               name == "cblas_sgemv" || name == "mkl_scsrgemv" ||
               name == "mkl_simatcopy" || name == "dfsInterpolate1D" ||
               name == "cblas_cdotc_sub" || name == "cblas_caxpy";
    }

    void
    commentStatement(std::size_t i, const char *why)
    {
        std::size_t b = stmtBeginByte(i);
        std::size_t e = tok(stmtEndTok(i)).end;
        edits_.push_back({b, e, "/* MEALib (" + std::string(why) +
                                    "): " + src_.substr(b, e - b) +
                                    " */"});
    }

    // ----- fftw handling -------------------------------------------------

    void
    recordFftwPlan(std::size_t i)
    {
        std::size_t open = i + 1;
        std::size_t close = matchParen(open);
        if (close == std::string::npos)
            return;
        auto args = callArgs(open, close);
        if (args.size() < 8) {
            note(tok(i).line, "fftwf_plan_guru_dft with unexpected "
                              "argument count; skipped");
            return;
        }
        FftwPlanSite p;
        p.line = tok(i).line;
        // plan variable: identifier before the '=' preceding the call
        for (std::size_t j = i; j-- > 0;) {
            if (toks_[j].is("=") && j > 0 &&
                toks_[j - 1].kind == CTokKind::Ident) {
                p.var = toks_[j - 1].text;
                break;
            }
            if (toks_[j].is(";") || toks_[j].is("{") || toks_[j].is("}"))
                break;
        }
        if (p.var.empty()) {
            note(p.line, "fftwf_plan_guru_dft result not assigned to a "
                         "variable; skipped");
            return;
        }
        char *end = nullptr;
        long rank = std::strtol(args[0].text.c_str(), &end, 10);
        p.rank = (end && *end == '\0') ? rank : -1;
        {
            auto [f4, e4] = argTokens(open, close, 4);
            p.inSym = firstIdent(f4, e4);
            auto [f5, e5] = argTokens(open, close, 5);
            p.outSym = firstIdent(f5, e5);
        }
        if (args[6].text == "FFTW_FORWARD")
            p.dir = "-1";
        else if (args[6].text == "FFTW_BACKWARD")
            p.dir = "1";
        else
            p.dir = valueOf(args[6], "dir", p.line);
        p.stmtBegin = stmtBeginByte(i);
        p.stmtEnd = tok(stmtEndTok(i)).end;
        plans_.push_back(std::move(p));
    }

    void
    recordFftwExec(std::size_t i)
    {
        std::size_t open = i + 1;
        std::size_t close = matchParen(open);
        if (close == std::string::npos)
            return;
        FftwExecSite e;
        e.var = firstIdent(open + 1, close);
        e.line = tok(i).line;
        e.stmtBegin = stmtBeginByte(i);
        e.stmtEnd = tok(stmtEndTok(i)).end;
        execs_.push_back(std::move(e));
    }

    const FftwPlanSite *
    planByVar(const std::string &var) const
    {
        for (const auto &p : plans_)
            if (p.var == var)
                return &p;
        return nullptr;
    }

    /** Group consecutive executes whose buffers connect into passes. */
    void
    groupFftw()
    {
        for (std::size_t i = 0; i < execs_.size();) {
            const FftwPlanSite *first = planByVar(execs_[i].var);
            if (!first) {
                note(execs_[i].line,
                     "fftwf_execute of unknown plan '" + execs_[i].var +
                         "'; left untouched");
                ++i;
                continue;
            }
            std::vector<const FftwPlanSite *> chain{first};
            std::size_t j = i + 1;
            while (j < execs_.size()) {
                const FftwPlanSite *next = planByVar(execs_[j].var);
                if (!next || next->inSym.empty() ||
                    next->inSym != chain.back()->outSym)
                    break;
                chain.push_back(next);
                ++j;
            }
            emitFftwPass(chain, execs_[i], i, j);
            i = j;
        }
        for (const auto &p : plans_) {
            edits_.push_back(
                {p.stmtBegin, p.stmtEnd,
                 "/* MEALib (plan absorbed into TDL): " +
                     src_.substr(p.stmtBegin, p.stmtEnd - p.stmtBegin) +
                     " */"});
        }
    }

    void
    emitFftwPass(const std::vector<const FftwPlanSite *> &chain,
                 const FftwExecSite &firstExec, std::size_t execFrom,
                 std::size_t execTo)
    {
        unsigned id = ++planCounter_;
        std::ostringstream tdl;
        tdl << "PASS(in=$" << chain.front()->inSym << ", out=$"
            << chain.back()->outSym << ") {";
        for (const FftwPlanSite *p : chain) {
            bool copy = p->rank == 0;
            std::string file =
                (copy ? "reshape" : "fft") + std::to_string(id) + "_" +
                p->var + ".para";
            tdl << " COMP(acc=" << (copy ? "RESHP" : "FFT")
                << ", params=\"" << file << "\")";

            std::ostringstream pf;
            if (copy) {
                pf << "# generated from rank-0 guru plan '" << p->var
                   << "' (data copy)\n";
                pf << "m = $" << p->var << "_rows\n";
                pf << "n = $" << p->var << "_cols\n";
                pf << "complex = true\n";
            } else {
                pf << "# generated from guru plan '" << p->var << "'\n";
                pf << "n = $" << p->var << "_n\n";
                pf << "m = $" << p->var << "_batch\n";
                pf << "complex = true\n";
                pf << "dir = " << p->dir << "\n";
            }
            pf << "in0 = $" << p->inSym << "\n";
            pf << "out = $" << p->outSym << "\n";
            res_.paramFiles[file] = pf.str();
            res_.callsAbsorbed++;
        }
        tdl << " }";
        sites_.push_back({firstExec.stmtBegin, tdl.str()});
        res_.plansEmitted++;

        // Rewrite the first execute into the runtime sequence; comment
        // out the rest of the chain's executes.
        edits_.push_back(
            {firstExec.stmtBegin, firstExec.stmtEnd,
             runtimeBlock(id, "$" + chain.front()->inSym,
                          "$" + chain.back()->outSym, tdl.str())});
        for (std::size_t k = execFrom + 1; k < execTo; ++k) {
            edits_.push_back({execs_[k].stmtBegin, execs_[k].stmtEnd,
                              "/* MEALib (chained into plan " +
                                  std::to_string(id) + "): " +
                                  src_.substr(execs_[k].stmtBegin,
                                              execs_[k].stmtEnd -
                                                  execs_[k].stmtBegin) +
                                  " */"});
        }
    }

    std::string
    runtimeBlock(unsigned id, const std::string &inSym,
                 const std::string &outSym, const std::string &tdl)
    {
        std::string esc;
        for (char c : tdl) {
            if (c == '"')
                esc += "\\\"";
            else
                esc += c;
        }
        std::ostringstream os;
        // Execution goes through mealib_dispatch_execute (the op-IR
        // dispatcher seam) rather than mealib_acc_execute directly, so
        // the offload policy decides host vs accelerator per call.
        os << "{ acc_plan __mea_p" << id << " = mealib_acc_plan(\"" << esc
           << "\", (void *)" << (inSym[0] == '$' ? inSym.substr(1) : inSym)
           << ", 0, (void *)"
           << (outSym[0] == '$' ? outSym.substr(1) : outSym)
           << ", 0); mealib_dispatch_execute(__mea_p" << id
           << "); mealib_acc_destroy(__mea_p" << id << "); }";
        return os.str();
    }

    // ----- OpenMP loop nests ----------------------------------------------

    struct LoopDim
    {
        std::string var;
        std::string bound; //!< literal text or $symbol
    };

    /**
     * Try to consume `#pragma omp parallel for` + for-nest + accelerable
     * call at token @p pragmaIdx. @return byte offset one past the nest
     * on success, npos on failure (nothing recorded).
     */
    std::size_t
    tryOmpNest(std::size_t pragmaIdx)
    {
        std::size_t i = pragmaIdx + 1;
        std::vector<LoopDim> dims;
        unsigned braces = 0;
        unsigned line = tok(pragmaIdx).line;

        while (dims.size() < 4 && tok(i).is("for")) {
            std::size_t open = i + 1;
            if (!tok(open).is("("))
                return std::string::npos;
            std::size_t close = matchParen(open);
            if (close == std::string::npos)
                return std::string::npos;

            LoopDim d;
            // init: ident '=' ... ';'
            std::size_t j = open + 1;
            while (j < close && isTypeWord(tok(j).text))
                ++j;
            if (tok(j).kind != CTokKind::Ident || !tok(j + 1).is("="))
                return std::string::npos;
            d.var = tok(j).text;
            while (j < close && !tok(j).is(";"))
                ++j;
            // cond: ident '<' bound ';'
            ++j;
            if (tok(j).kind != CTokKind::Ident || tok(j).text != d.var ||
                !tok(j + 1).is("<"))
                return std::string::npos;
            std::size_t bound_start = j + 2;
            std::size_t k = bound_start;
            while (k < close && !tok(k).is(";"))
                ++k;
            Arg bound = makeArg(bound_start, k);
            d.bound = valueOf(bound, "bound", tok(j).line);
            dims.push_back(d);

            i = close + 1;
            if (tok(i).is("{")) {
                ++braces;
                ++i;
            }
        }
        if (dims.empty())
            return std::string::npos;

        // Innermost statement must be one accelerable call.
        if (tok(i).kind != CTokKind::Ident ||
            !isBareAccelCall(tok(i).text) || !tok(i + 1).is("("))
            return std::string::npos;
        std::size_t call_tok = i;
        std::size_t end_tok = stmtEndTok(i);

        // Swallow the closing braces of the nest.
        std::size_t last = end_tok;
        unsigned remaining = braces;
        while (remaining > 0 && tok(last + 1).is("}")) {
            ++last;
            --remaining;
        }
        if (remaining != 0)
            return std::string::npos;

        std::size_t begin = tok(pragmaIdx).begin;
        std::size_t end = tok(last).end;

        emitLoopedCall(call_tok, dims, begin, end, line);
        return end;
    }

    /** TDL + params + rewrite for a (possibly looped) library call. */
    void
    emitLoopedCall(std::size_t callTok, const std::vector<LoopDim> &dims,
                   std::size_t begin, std::size_t end, unsigned line)
    {
        std::size_t open = callTok + 1;
        std::size_t close = matchParen(open);
        if (close == std::string::npos)
            return;
        auto args = callArgs(open, close);
        const std::string &name = tok(callTok).text;

        std::string acc;
        std::ostringstream pf;
        std::string in_sym = "$in", out_sym = "$out";

        auto strideLine = [&](const char *op, const std::string &arr) {
            pf << op << ".stride = ";
            for (unsigned d = 0; d < 4; ++d) {
                if (d < dims.size())
                    pf << "$" << arr << "_stride" << d;
                else
                    pf << 0;
                pf << (d < 3 ? ", " : "\n");
            }
            if (!dims.empty())
                note(line, "per-iteration strides of '" + arr +
                               "' resolved at runtime");
        };

        if (name == "cblas_cdotc_sub" && args.size() == 6) {
            acc = "DOT";
            pf << "n = " << valueOf(args[0], "n", line) << "\n";
            pf << "complex = true\nconj = true\n";
            pf << "inc0 = " << valueOf(args[2], "incx", line) << "\n";
            pf << "inc1 = " << valueOf(args[4], "incy", line) << "\n";
            std::string x = bufferSym(open, close, 1, line, "x");
            std::string y = bufferSym(open, close, 3, line, "y");
            std::string r = bufferSym(open, close, 5, line, "result");
            pf << "in0 = " << x << "\n";
            strideLine("in0", x.substr(1));
            pf << "in1 = " << y << "\n";
            strideLine("in1", y.substr(1));
            pf << "out = " << r << "\n";
            strideLine("out", r.substr(1));
            in_sym = x;
            out_sym = r;
        } else if ((name == "cblas_saxpy" || name == "cblas_caxpy") &&
                   args.size() == 6) {
            acc = "AXPY";
            pf << "n = " << valueOf(args[0], "n", line) << "\n";
            if (name == "cblas_caxpy") {
                pf << "complex = true\n";
            } else {
                pf << "alpha = " << valueOf(args[1], "alpha", line)
                   << "\n";
                // cblas_saxpy is y := a*x + y; the AXPY accelerator
                // computes the axpby superset, so pin beta to 1.
                pf << "beta = 1\n";
            }
            pf << "inc0 = " << valueOf(args[3], "incx", line) << "\n";
            pf << "inc1 = " << valueOf(args[5], "incy", line) << "\n";
            std::string x = bufferSym(open, close, 2, line, "x");
            std::string y = bufferSym(open, close, 4, line, "y");
            pf << "in0 = " << x << "\n";
            pf << "out = " << y << "\n";
            if (!dims.empty()) {
                strideLine("in0", x.substr(1));
                strideLine("out", y.substr(1));
            }
            in_sym = x;
            out_sym = y;
        } else if (name == "cblas_sdot" && args.size() == 5) {
            acc = "DOT";
            pf << "n = " << valueOf(args[0], "n", line) << "\n";
            pf << "inc0 = " << valueOf(args[2], "incx", line) << "\n";
            pf << "inc1 = " << valueOf(args[4], "incy", line) << "\n";
            std::string x = bufferSym(open, close, 1, line, "x");
            std::string y = bufferSym(open, close, 3, line, "y");
            pf << "in0 = " << x << "\nin1 = " << y << "\n";
            pf << "out = $" << "sdot_result_l" << line << "\n";
            note(line, "cblas_sdot returns by value; result placeholder "
                       "bound at runtime");
            in_sym = x;
            out_sym = y;
        } else if (name == "cblas_sgemv" && args.size() == 12) {
            acc = "GEMV";
            pf << "m = " << valueOf(args[2], "m", line) << "\n";
            pf << "n = " << valueOf(args[3], "n", line) << "\n";
            pf << "alpha = " << valueOf(args[4], "alpha", line) << "\n";
            pf << "beta = " << valueOf(args[9], "beta", line) << "\n";
            std::string a = bufferSym(open, close, 5, line, "a");
            std::string x = bufferSym(open, close, 7, line, "x");
            std::string y = bufferSym(open, close, 10, line, "y");
            pf << "in0 = " << a << "\nin1 = " << x << "\nout = " << y
               << "\n";
            in_sym = a;
            out_sym = y;
        } else if (name == "mkl_scsrgemv" && args.size() == 7) {
            acc = "SPMV";
            pf << "m = $spmv_rows_l" << line << "\n";
            pf << "n = $spmv_cols_l" << line << "\n";
            pf << "k = $spmv_nnz_l" << line << "\n";
            note(line, "mkl_scsrgemv dimensions bound at runtime");
            std::string ia = bufferSym(open, close, 3, line, "ia");
            std::string ja = bufferSym(open, close, 4, line, "ja");
            std::string a = bufferSym(open, close, 2, line, "a");
            std::string x = bufferSym(open, close, 5, line, "x");
            std::string y = bufferSym(open, close, 6, line, "y");
            pf << "in0 = " << ia << "\nin1 = " << ja << "\nin2 = " << a
               << "\nin3 = " << x << "\nout = " << y << "\n";
            in_sym = a;
            out_sym = y;
        } else if (name == "mkl_simatcopy" && args.size() == 8) {
            acc = "RESHP";
            pf << "m = " << valueOf(args[2], "rows", line) << "\n";
            pf << "n = " << valueOf(args[3], "cols", line) << "\n";
            pf << "alpha = " << valueOf(args[4], "alpha", line) << "\n";
            std::string ab = bufferSym(open, close, 5, line, "ab");
            pf << "in0 = " << ab << "\nout = " << ab << "\n";
            in_sym = ab;
            out_sym = ab;
        } else if (name == "dfsInterpolate1D" && args.size() == 4) {
            acc = "RESMP";
            pf << "n = " << valueOf(args[1], "nx", line) << "\n";
            pf << "m = " << valueOf(args[3], "nsite", line) << "\n";
            std::string x = bufferSym(open, close, 0, line, "x");
            std::string site = bufferSym(open, close, 2, line, "site");
            pf << "in0 = " << x << "\nout = " << site << "\n";
            in_sym = x;
            out_sym = site;
        } else {
            note(line, "call '" + name +
                           "' has unexpected arity; left untouched");
            return;
        }

        unsigned id = ++planCounter_;
        std::string file = acc;
        std::transform(file.begin(), file.end(), file.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::tolower(c));
                       });
        file += std::to_string(id) + ".para";
        res_.paramFiles[file] = pf.str();

        std::ostringstream tdl;
        if (!dims.empty()) {
            tdl << "LOOP(dims=\"";
            for (std::size_t d = 0; d < dims.size(); ++d)
                tdl << dims[d].bound << (d + 1 < dims.size() ? "x" : "");
            tdl << "\") { ";
        }
        tdl << "PASS(in=" << in_sym << ", out=" << out_sym << ") { "
            << "COMP(acc=" << acc << ", params=\"" << file << "\") }";
        if (!dims.empty())
            tdl << " }";

        std::uint64_t folded = 1;
        for (const LoopDim &d : dims) {
            char *e = nullptr;
            long v = std::strtol(d.bound.c_str(), &e, 10);
            folded *= (e && *e == '\0' && v > 0)
                          ? static_cast<std::uint64_t>(v)
                          : 1;
        }
        res_.callsAbsorbed += folded;
        res_.plansEmitted++;
        sites_.push_back({begin, tdl.str()});
        edits_.push_back(
            {begin, end, runtimeBlock(id, in_sym, out_sym, tdl.str())});
    }

    /** Bare accelerable call outside any recognized loop nest. */
    void
    handleBareCall(std::size_t i)
    {
        std::size_t begin = stmtBeginByte(i);
        std::size_t end = tok(stmtEndTok(i)).end;
        emitLoopedCall(i, {}, begin, end, tok(i).line);
    }

    // ----- output ---------------------------------------------------------

    void
    finalize()
    {
        // Apply edits back to front, dropping any edit nested inside an
        // earlier (larger) one.
        std::sort(edits_.begin(), edits_.end(),
                  [](const Edit &a, const Edit &b) {
                      return a.begin != b.begin ? a.begin < b.begin
                                                : a.end > b.end;
                  });
        std::string out;
        std::size_t pos = 0;
        for (const Edit &e : edits_) {
            if (e.begin < pos)
                continue; // nested in a previous rewrite
            out += src_.substr(pos, e.begin - pos);
            out += e.text;
            pos = e.end;
        }
        out += src_.substr(pos);
        res_.source = std::move(out);

        std::sort(sites_.begin(), sites_.end(),
                  [](const PlanSite &a, const PlanSite &b) {
                      return a.pos < b.pos;
                  });
        std::ostringstream tdl;
        for (const PlanSite &s : sites_)
            tdl << s.tdl << "\n";
        res_.tdl = tdl.str();
    }

    std::string src_;
    std::vector<CTok> toks_;
    std::vector<Edit> edits_;
    std::vector<FftwPlanSite> plans_;
    std::vector<FftwExecSite> execs_;
    std::vector<PlanSite> sites_;
    unsigned planCounter_ = 0;
    TranslationResult res_;
};

} // namespace

TranslationResult
translate(const std::string &cSource)
{
    Translator t(cSource);
    return t.run();
}

std::string
bindParams(const std::string &text,
           const std::map<std::string, std::uint64_t> &syms)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size();) {
        if (text[i] != '$') {
            out += text[i++];
            continue;
        }
        std::size_t j = i + 1;
        while (j < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[j])) ||
                text[j] == '_'))
            ++j;
        std::string sym = text.substr(i + 1, j - i - 1);
        auto it = syms.find(sym);
        fatalIf(it == syms.end(),
                "bindParams: no binding for placeholder $", sym);
        out += std::to_string(it->second);
        i = j;
    }
    return out;
}

} // namespace mealib::s2s
