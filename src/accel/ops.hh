/**
 * @file
 * Accelerated operations: the seven memory-bounded library routines of
 * Table 1, and the parameter records that describe one invocation.
 *
 * An OpCall is the common currency between the TDL compiler (which
 * serializes it into the descriptor's Parameter Region), the analytical
 * performance model (which derives the DRAM access streams from it) and
 * the functional executor on the accelerator layer (which computes the
 * actual result in simulated physical memory).
 */

#ifndef MEALIB_ACCEL_OPS_HH
#define MEALIB_ACCEL_OPS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace mealib::accel {

/** The accelerator kinds of Table 1, in opcode order. */
enum class AccelKind : std::uint8_t
{
    AXPY = 0, //!< vector scaling and add        (cblas_saxpy)
    DOT,      //!< dot product                    (cblas_sdot / cdotc)
    GEMV,     //!< dense matrix-vector multiply   (cblas_sgemv)
    SPMV,     //!< sparse matrix-vector multiply  (mkl_scsrgemv)
    RESMP,    //!< 1D data resampling             (dfsInterpolate1D)
    FFT,      //!< fast Fourier transform         (fftwf_execute)
    RESHP,    //!< matrix transpose / data reshape (mkl_simatcopy)
    kCount,
};

/** Human-readable accelerator name ("AXPY", ...). */
const char *name(AccelKind kind);

/** Number of loop dimensions a descriptor LOOP block may carry. */
inline constexpr unsigned kMaxLoopDims = 4;

/**
 * Iteration space of a LOOP block. The paper's compiler flattens OpenMP
 * for-nests (up to 4 deep, as in the STAP inner-product nest) into one
 * LOOP whose dimensions match the source loops.
 */
struct LoopSpec
{
    std::array<std::uint32_t, kMaxLoopDims> dims{1, 1, 1, 1};

    std::uint64_t
    iterations() const
    {
        std::uint64_t t = 1;
        for (auto d : dims)
            t *= d;
        return t;
    }
};

/**
 * One operand of an accelerated call: a base physical address plus a
 * byte stride per loop dimension (base + sum_d idx_d * stride_d).
 */
struct OperandRef
{
    Addr base = 0;
    std::array<std::int64_t, kMaxLoopDims> stride{0, 0, 0, 0};

    /** Effective address at a loop index. */
    Addr
    at(const std::array<std::uint32_t, kMaxLoopDims> &idx) const
    {
        std::int64_t off = 0;
        for (unsigned d = 0; d < kMaxLoopDims; ++d)
            off += static_cast<std::int64_t>(idx[d]) * stride[d];
        return base + static_cast<Addr>(off);
    }
};

/** One accelerator invocation (a COMP block in TDL terms). */
struct OpCall
{
    AccelKind kind = AccelKind::AXPY;

    // Dimensions; meaning depends on kind:
    //   AXPY/DOT:  n = vector length
    //   GEMV:      m x n matrix
    //   SPMV:      m rows, k nonzeros, n columns
    //   RESMP:     n input samples -> m output samples
    //   FFT:       n points per transform, m transforms (batch);
    //              k = rows for a rank-2 (k x n) transform, 0 for rank 1
    //   RESHP:     m x n matrix transpose
    std::uint64_t n = 0;
    std::uint64_t m = 1;
    std::uint64_t k = 0;

    std::int64_t inc0 = 1;    //!< element stride within first operand
    std::int64_t inc1 = 1;    //!< element stride within second operand
    float alpha = 1.0f;
    float beta = 0.0f;
    bool complexData = false; //!< operate on cfloat instead of float
    bool conjugate = false;   //!< DOT: conjugated (cdotc) variant
    std::int32_t fftDir = -1; //!< FFTW sign convention
    std::uint32_t resampleKind = 0; //!< mkl::InterpKind value

    OperandRef in0; //!< x / A / rowPtr / input
    OperandRef in1; //!< y-in / x / colIdx
    OperandRef in2; //!< SPMV values
    OperandRef in3; //!< SPMV x vector
    OperandRef out; //!< result

    /** Bytes per element given complexData. */
    std::uint64_t
    elemBytes() const
    {
        return complexData ? 8 : 4;
    }

    /** Floating point operations of ONE iteration of this call. */
    double flops() const;

    /** DRAM traffic (bytes) of one iteration, reads + writes. */
    double trafficBytes() const;

    /**
     * Input-operand footprint of one iteration: the bytes the host may
     * hold dirty in its caches and must flush before handing the
     * operation to the accelerators.
     */
    double inputBytes() const;
};

/**
 * Iterations of @p loop that actually advance @p op: dimensions with a
 * zero stride revisit the same data (e.g. STAP's weights are reused
 * across training cells), so they do not multiply traffic.
 */
double operandIterations(const OperandRef &op, const LoopSpec &loop);

/**
 * Reuse-aware DRAM traffic of @p call iterated over @p loop: each
 * operand's per-iteration bytes are multiplied only by the loop
 * dimensions that move it. Equals trafficBytes() * iterations when
 * every operand strides through every dimension.
 */
double loopedTrafficBytes(const OpCall &call, const LoopSpec &loop);

/** One operand's reuse-aware traffic contribution. */
struct OperandTraffic
{
    const OperandRef *op; //!< points into the queried OpCall
    double bytes;         //!< total bytes over the whole loop
};

/**
 * Per-operand reuse-aware traffic of @p call over @p loop (the terms
 * loopedTrafficBytes() sums). Used by the runtime to price operands
 * that live on a remote memory stack.
 */
std::vector<OperandTraffic> operandTraffic(const OpCall &call,
                                           const LoopSpec &loop);

} // namespace mealib::accel

#endif // MEALIB_ACCEL_OPS_HH
