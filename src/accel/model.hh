/**
 * @file
 * Analytical accelerator performance/power model (the paper's
 * methodology, Sec. 4.2: memory traces drive a cycle-level 3D-DRAM
 * simulator; synthesis constants plus algorithmic parameters feed a
 * per-accelerator analytical model).
 */

#ifndef MEALIB_ACCEL_MODEL_HH
#define MEALIB_ACCEL_MODEL_HH

#include <memory>

#include "accel/config.hh"
#include "accel/ops.hh"
#include "common/units.hh"
#include "dram/stack.hh"
#include "noc/mesh.hh"

namespace mealib::accel {

/** Result of estimating one accelerated operation. */
struct AccelEstimate
{
    Cost total;               //!< end-to-end time and energy
    double memSeconds = 0.0;  //!< DRAM-limited time
    double computeSeconds = 0.0; //!< PE-limited time
    double dramEnergyJ = 0.0;
    double logicEnergyJ = 0.0;
    double nocEnergyJ = 0.0;
    double achievedBw = 0.0;  //!< bytes/s sustained from DRAM
    double flops = 0.0;       //!< total floating-point work
    double bytes = 0.0;       //!< total DRAM traffic

    /** Sustained GFLOP/s (0 for pure data movement). */
    double
    gflops() const
    {
        return total.seconds > 0.0 ? flops / total.seconds / 1e9 : 0.0;
    }

    /** Sustained GB/s (the RESHP metric, paper footnote 3). */
    double
    gbps() const
    {
        return total.seconds > 0.0 ? bytes / total.seconds / 1e9 : 0.0;
    }

    /** Average power over the operation. */
    double
    powerW() const
    {
        return total.watts();
    }

    /** Energy efficiency in GFLOP/s per watt. */
    double
    gflopsPerW() const
    {
        double w = powerW();
        return w > 0.0 ? gflops() / w : 0.0;
    }
};

/**
 * Model of one accelerator kind attached to a memory device. The same
 * model serves MEALib (HMC stack), MSAS (2D DRAM, 102.4 GB/s) and PSAS
 * (host DDR3) by swapping the DramParams — exactly the comparison of
 * Table 3.
 */
class AccelModel
{
  public:
    AccelModel(AccelKind kind, const AccelConfig &cfg,
               const dram::DramParams &dram,
               const noc::MeshParams &mesh);

    /** Estimate @p call iterated over @p loop. */
    AccelEstimate estimate(const OpCall &call,
                           const LoopSpec &loop = {}) const;

    AccelKind kind() const { return kind_; }
    const AccelConfig &config() const { return cfg_; }

    /** Peak PE throughput (flop/s) of this configuration. */
    double peakFlops() const;

  private:
    /** A built trace plus pattern metadata the estimator needs. */
    struct TraceInfo
    {
        dram::Trace trace;
        double gatherBytes = 0.0; //!< latency-bound random traffic
    };

    /** Build the sampled DRAM trace for the whole looped call. */
    TraceInfo buildTrace(const OpCall &call, const LoopSpec &loop) const;

    AccelKind kind_;
    AccelConfig cfg_;
    dram::DramParams dramParams_;
    noc::Mesh mesh_;
    // The stack is mutated during trace simulation; the model is
    // logically const, so keep it behind a unique_ptr and reset state
    // per estimate.
    std::unique_ptr<dram::Stack> stack_;
};

} // namespace mealib::accel

#endif // MEALIB_ACCEL_MODEL_HH
