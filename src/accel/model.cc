#include "accel/model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "dram/tracegen.hh"

namespace mealib::accel {

namespace {

/** Pipeline fill/drain cost charged per loop iteration, in PE cycles.
 * Iterations of a LOOP block are distributed across all PEs, so the
 * per-iteration bubble is amortized by tiles x cores. */
constexpr double kIterStartupCycles = 16.0;

} // namespace

AccelModel::AccelModel(AccelKind kind, const AccelConfig &cfg,
                       const dram::DramParams &dram,
                       const noc::MeshParams &mesh)
    : kind_(kind), cfg_(cfg), dramParams_(dram), mesh_(mesh),
      stack_(std::make_unique<dram::Stack>(dram))
{
}

double
AccelModel::peakFlops() const
{
    return static_cast<double>(cfg_.tiles) *
           static_cast<double>(cfg_.coresPerTile) * cfg_.flopsPerCycle *
           cfg_.freq;
}

AccelModel::TraceInfo
AccelModel::buildTrace(const OpCall &c, const LoopSpec &loop) const
{
    TraceInfo info;
    dram::TraceBuilder tb(dramParams_, 2_MiB);
    const std::uint64_t es = c.elemBytes();
    const std::uint64_t cap = dramParams_.org.capacityBytes;
    // Stagger the operand regions by a couple of bank positions so
    // concurrent streams occupy different banks (power-of-two-aligned
    // bases would otherwise all collide in bank 0 and thrash rows; the
    // runtime's allocator staggers real buffers the same way).
    const std::uint64_t bank_step = dramParams_.org.rowBytes *
                                    dramParams_.org.numVaults;
    const Addr r0 = 0;
    const Addr r1 = cap / 4 + 2 * bank_step;
    const Addr r2 = cap / 2 + 4 * bank_step;
    const Addr r3 = 3 * cap / 4 + 6 * bank_step;
    // Per-operand loop multipliers: a zero stride in a loop dimension
    // means that dimension revisits the same data, which the tile local
    // memories capture instead of DRAM (the paper's STAP weights, for
    // instance, are reused across training cells).
    auto scaledBy = [&](std::uint64_t bytes, const OperandRef &op) {
        return static_cast<std::uint64_t>(
            static_cast<double>(bytes) * operandIterations(op, loop));
    };

    switch (kind_) {
      case AccelKind::AXPY:
        tb.addLinear(r0, scaledBy(c.n * es, c.in0), false); // x
        tb.addLinear(r1, scaledBy(c.n * es, c.out), false); // y read
        tb.addLinear(r2, scaledBy(c.n * es, c.out), true);  // y write
        break;
      case AccelKind::DOT:
        tb.addLinear(r0, scaledBy(c.n * es, c.in0), false);
        tb.addLinear(r1, scaledBy(c.n * es, c.in1), false);
        break;
      case AccelKind::GEMV:
        tb.addLinear(r0, scaledBy(c.m * c.n * es, c.in0), false); // A
        tb.addLinear(r1, scaledBy(c.n * es, c.in1), false);
        tb.addLinear(r2, scaledBy(c.m * es, c.out), true);        // y
        break;
      case AccelKind::SPMV: {
        tb.addLinear(r0, scaledBy(c.m * 8, c.in0), false); // rowPtr
        tb.addLinear(r1, scaledBy(c.k * 4, c.in1), false); // colIdx
        tb.addLinear(r2, scaledBy(c.k * 4, c.in2), false); // values
        // Gather of x: the accelerator blocks columns so the hot part
        // of x lives in the tile local memories; only LM misses reach
        // DRAM, each fetching a full burst. This locality is what the
        // large SPMV area (Table 5: 14.17 mm^2 of gather lanes + LM)
        // buys — and the residual misses are why SPMV still shows the
        // smallest gain in Fig. 9 (11x).
        std::uint64_t lm_total = static_cast<std::uint64_t>(cfg_.tiles) *
                                 cfg_.localMemKiB * 1024;
        double x_bytes = static_cast<double>(c.n) * 4.0;
        double resident =
            std::min(1.0, static_cast<double>(lm_total) / x_bytes);
        double miss_rate = 1.0 - 0.9 * resident;
        auto misses = static_cast<std::uint64_t>(
            static_cast<double>(scaledBy(c.k, c.in3)) * miss_rate);
        if (misses > 0) {
            Rng rng(0x5eed5eedULL + c.k);
            std::uint64_t span = std::max<std::uint64_t>(c.n * 4, 4096);
            tb.addGather(r3, span, misses,
                         static_cast<std::uint32_t>(
                             dramParams_.timing.burstBytes),
                         false, rng);
            info.gatherBytes = static_cast<double>(
                misses * dramParams_.timing.burstBytes);
        }
        tb.addLinear(r3 + c.n * 4 + bank_step,
                     scaledBy(c.m * 4, c.out), true); // y
        break;
      }
      case AccelKind::RESMP:
        tb.addLinear(r0, scaledBy(c.n * es, c.in0), false);
        tb.addLinear(r1, scaledBy(c.m * es, c.out), true);
        break;
      case AccelKind::FFT: {
        std::uint64_t pts = c.n * std::max<std::uint64_t>(c.k, 1);
        std::uint64_t bytes = pts * es * c.m;
        std::uint64_t lm_total = static_cast<std::uint64_t>(cfg_.tiles) *
                                 cfg_.localMemKiB * 1024;
        // DRAM-optimized FFT [24]: single DRAM pass when a transform
        // fits the aggregate local memory, else a two-pass row-column
        // decomposition.
        unsigned passes = pts * es <= lm_total ? 1 : 2;
        for (unsigned p = 0; p < passes; ++p) {
            tb.addLinear(r0, scaledBy(bytes, c.in0), false);
            tb.addLinear(r2, scaledBy(bytes, c.out), true);
        }
        break;
      }
      case AccelKind::RESHP: {
        // The data-reshape unit [23] stages destination rows in its
        // SRAM and emits them as full sequential rows, so both the read
        // and the write side stream; partial edge tiles add ~10%.
        std::uint64_t in_bytes = scaledBy(c.m * c.n * es, c.in0);
        std::uint64_t out_bytes = scaledBy(c.m * c.n * es, c.out);
        tb.addLinear(r0, in_bytes, false);
        tb.addLinear(r2, out_bytes + out_bytes / 10, true);
        break;
      }
      default:
        panic("buildTrace: bad kind");
    }
    info.trace = tb.build();
    return info;
}

AccelEstimate
AccelModel::estimate(const OpCall &call, const LoopSpec &loop) const
{
    const std::uint64_t iters = loop.iterations();
    fatalIf(iters == 0, "estimate: empty loop");

    TraceInfo info = buildTrace(call, loop);
    dram::RunStats mem = stack_->run(info.trace);

    AccelEstimate e;
    e.memSeconds = mem.seconds;

    // Latency-bound gathers: a PE sustains only a few outstanding
    // random accesses, so gather throughput is capped by concurrency
    // (misses x row-cycle latency / MSHRs), independent of the stack's
    // streaming bandwidth. This is what makes the SPMV design space of
    // Fig. 11 scale with PE count.
    if (info.gatherBytes > 0.0) {
        const dram::TimingParams &tm = dramParams_.timing;
        double miss_lat = static_cast<double>(tm.tRP + tm.tRCD +
                                              tm.tCAS + tm.tBURST) *
                          tm.tCK;
        constexpr double kMshrsPerPe = 4.0;
        double conc_bw = static_cast<double>(cfg_.tiles) *
                         static_cast<double>(cfg_.coresPerTile) *
                         kMshrsPerPe *
                         static_cast<double>(tm.burstBytes) / miss_lat;
        double stream_bytes =
            static_cast<double>(info.trace.totalBytes) -
            info.gatherBytes;
        double lat_bound =
            info.gatherBytes / conc_bw +
            stream_bytes / dramParams_.peakInternalBandwidth();
        e.memSeconds = std::max(e.memSeconds, lat_bound);
    }
    e.bytes = static_cast<double>(mem.bytes);
    e.achievedBw = mem.bandwidth();
    e.flops = call.flops() * static_cast<double>(iters);

    SynthesisConstants synth = synthesis(kind_);
    double compute_rate = peakFlops() * synth.computeUtil;
    double pes = static_cast<double>(cfg_.tiles) *
                 static_cast<double>(cfg_.coresPerTile);
    e.computeSeconds = e.flops / compute_rate +
                       static_cast<double>(iters) * kIterStartupCycles /
                           (cfg_.freq * pes);

    double t = std::max(e.memSeconds, e.computeSeconds);

    // DRAM energy: simulated, plus background for any compute-bound
    // tail the trace simulation did not cover.
    e.dramEnergyJ = mem.energyJ;
    if (t > e.memSeconds) {
        e.dramEnergyJ += dramParams_.energy.backgroundWPerVault *
                         static_cast<double>(dramParams_.org.numVaults) *
                         (t - e.memSeconds);
    }

    e.logicEnergyJ = logicPowerW(kind_, cfg_) * t;

    // NoC: payload crosses ~2 hops on average between vault tiles and
    // the consuming PE; DOT additionally reduces partials to tile 0.
    e.nocEnergyJ = mesh_.transferJoules(2, mem.bytes) +
                   mesh_.leakageW() * t;
    if (kind_ == AccelKind::DOT || kind_ == AccelKind::SPMV ||
        kind_ == AccelKind::GEMV) {
        Cost red = mesh_.reduceToTile0(call.elemBytes() * 16);
        e.nocEnergyJ += red.joules;
        t += red.seconds; // one reduction latency per call
    }

    e.total.seconds = t;
    e.total.joules = e.dramEnergyJ + e.logicEnergyJ + e.nocEnergyJ;
    return e;
}

} // namespace mealib::accel
