/**
 * @file
 * Accelerator-layer design parameters and the 32 nm synthesis-derived
 * power/area constants (the paper obtains these from Synopsys Design
 * Compiler; we encode the resulting constants, calibrated against the
 * paper's Table 5, and scale them across the Fig. 11 design space).
 */

#ifndef MEALIB_ACCEL_CONFIG_HH
#define MEALIB_ACCEL_CONFIG_HH

#include <cstdint>

#include "accel/ops.hh"
#include "common/units.hh"
#include "hwmodel/constants.hh"

namespace mealib::accel {

/** Tunable design parameters of one accelerator (Sec. 5.3 sweep axes). */
struct AccelConfig
{
    double freq = 1.0_GHz;        //!< accelerator clock
    unsigned tiles = 32;          //!< one tile per vault (Fig. 4)
    unsigned coresPerTile = 4;    //!< PEs per tile
    double flopsPerCycle = 8.0;   //!< per PE (SIMD lanes x FMA)
    std::uint64_t localMemKiB = 64;  //!< per-tile local memory
    std::uint64_t blockElems = 4096; //!< algorithmic tile/block size
};

/** Default configuration used for Tables 2/5 and Figs. 9/10. */
AccelConfig defaultConfig(AccelKind kind);

/** Per-kind synthesis constants at the default configuration, 32 nm. */
struct SynthesisConstants
{
    double logicPowerW;   //!< datapath+LM power at 1 GHz, default cores
    double areaMm2;       //!< Table 5 area at the default configuration
    double computeUtil;   //!< fraction of peak PE issue the kind sustains
};

/** Synthesis constants for @p kind (values land on Table 5). */
SynthesisConstants synthesis(AccelKind kind);

/**
 * Logic power at a non-default configuration: dynamic power scales with
 * clock and PE count over a fixed leakage floor.
 */
double logicPowerW(AccelKind kind, const AccelConfig &cfg);

/** Area at a non-default configuration (scales with PE count). */
double areaMm2(AccelKind kind, const AccelConfig &cfg);

/** TSV array area on the accelerator layer (Table 5). */
inline constexpr double kTsvAreaMm2 = hwmodel::kTsvAreaMm2;

/** Total accelerator-layer area budget (HMC 2011 die, Sec. 5.2). */
inline constexpr double kLayerAreaMm2 = hwmodel::kAccelLayerAreaMm2;

} // namespace mealib::accel

#endif // MEALIB_ACCEL_CONFIG_HH
