#include "accel/ops.hh"

#include <cmath>

#include "common/logging.hh"

namespace mealib::accel {

const char *
name(AccelKind kind)
{
    switch (kind) {
      case AccelKind::AXPY:
        return "AXPY";
      case AccelKind::DOT:
        return "DOT";
      case AccelKind::GEMV:
        return "GEMV";
      case AccelKind::SPMV:
        return "SPMV";
      case AccelKind::RESMP:
        return "RESMP";
      case AccelKind::FFT:
        return "FFT";
      case AccelKind::RESHP:
        return "RESHP";
      default:
        panic("name: bad AccelKind ", static_cast<int>(kind));
    }
}

double
OpCall::flops() const
{
    const double cmul = complexData ? 4.0 : 1.0; // 4 real ops per cmul-ish
    switch (kind) {
      case AccelKind::AXPY:
        return 2.0 * static_cast<double>(n) * cmul;
      case AccelKind::DOT:
        return 2.0 * static_cast<double>(n) * cmul;
      case AccelKind::GEMV:
        return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
               cmul;
      case AccelKind::SPMV:
        return 2.0 * static_cast<double>(k);
      case AccelKind::RESMP:
        // 2 ops per tap; taps by kernel kind (2 / 4 / 8).
        return 2.0 * static_cast<double>(m) * cmul *
               (resampleKind == 0 ? 2.0 : resampleKind == 1 ? 4.0 : 8.0);
      case AccelKind::FFT: {
        double pts = static_cast<double>(n) *
                     static_cast<double>(k ? k : 1);
        double lg = std::log2(std::max(pts, 2.0));
        return 5.0 * pts * lg * static_cast<double>(m);
      }
      case AccelKind::RESHP:
        return 0.0; // pure data motion; reported as GB/s (footnote 3)
      default:
        panic("flops: bad AccelKind");
    }
}

double
operandIterations(const OperandRef &op, const LoopSpec &loop)
{
    double t = 1.0;
    for (unsigned d = 0; d < kMaxLoopDims; ++d)
        if (op.stride[d] != 0)
            t *= static_cast<double>(loop.dims[d]);
    return t;
}

std::vector<OperandTraffic>
operandTraffic(const OpCall &c, const LoopSpec &loop)
{
    const double es = static_cast<double>(c.elemBytes());
    const double dn = static_cast<double>(c.n);
    const double dm = static_cast<double>(c.m);
    const double dk = static_cast<double>(c.k);
    auto term = [&](const OperandRef &op, double per_iter) {
        return OperandTraffic{&op, per_iter *
                                       operandIterations(op, loop)};
    };
    switch (c.kind) {
      case AccelKind::AXPY:
        return {term(c.in0, dn * es), term(c.out, 2.0 * dn * es)};
      case AccelKind::DOT:
        return {term(c.in0, dn * es), term(c.in1, dn * es),
                term(c.out, es)};
      case AccelKind::GEMV:
        return {term(c.in0, dm * dn * es), term(c.in1, dn * es),
                term(c.out, dm * es)};
      case AccelKind::SPMV:
        return {term(c.in0, dm * 8.0), term(c.in1, dk * 4.0),
                term(c.in2, dk * 4.0), term(c.in3, dk * 4.0),
                term(c.out, dm * 4.0)};
      case AccelKind::RESMP:
        return {term(c.in0, dn * es), term(c.out, dm * es)};
      case AccelKind::FFT: {
        double pts = dn * (dk ? dk : 1.0) * dm;
        double passes = pts * es <= 256.0 * 1024.0 ? 1.0 : 2.0;
        return {term(c.in0, passes * pts * es),
                term(c.out, passes * pts * es)};
      }
      case AccelKind::RESHP:
        return {term(c.in0, dm * dn * es), term(c.out, dm * dn * es)};
      default:
        panic("operandTraffic: bad AccelKind");
    }
}

double
loopedTrafficBytes(const OpCall &c, const LoopSpec &loop)
{
    double total = 0.0;
    for (const OperandTraffic &t : operandTraffic(c, loop))
        total += t.bytes;
    return total;
}

double
OpCall::inputBytes() const
{
    const double es = static_cast<double>(elemBytes());
    const double dn = static_cast<double>(n);
    const double dm = static_cast<double>(m);
    const double dk = static_cast<double>(k);
    switch (kind) {
      case AccelKind::AXPY:
        return dn * es * 2.0; // x plus the pre-existing y
      case AccelKind::DOT:
        return dn * es * 2.0;
      case AccelKind::GEMV:
        return (dm * dn + dn) * es;
      case AccelKind::SPMV:
        return dm * 8.0 + dk * 8.0 + dn * 4.0;
      case AccelKind::RESMP:
        return dn * es;
      case AccelKind::FFT:
        return dn * (dk ? dk : 1.0) * es * dm;
      case AccelKind::RESHP:
        return dm * dn * es;
      default:
        panic("inputBytes: bad AccelKind");
    }
}

double
OpCall::trafficBytes() const
{
    const double es = static_cast<double>(elemBytes());
    const double dn = static_cast<double>(n);
    const double dm = static_cast<double>(m);
    const double dk = static_cast<double>(k);
    switch (kind) {
      case AccelKind::AXPY:
        return dn * es * 3.0; // read x, read y, write y
      case AccelKind::DOT:
        return dn * es * 2.0; // read x, read y
      case AccelKind::GEMV:
        return dm * dn * es + dn * es + dm * es;
      case AccelKind::SPMV:
        // rowPtr (8B) + colIdx (4B) + vals (4B) + x gather + y write.
        return dm * 8.0 + dk * (4.0 + 4.0 + 4.0) + dm * 4.0;
      case AccelKind::RESMP:
        return (dn + dm) * es;
      case AccelKind::FFT: {
        // DRAM-optimized FFT [24]: one read+write pass when the
        // transform fits the accelerator local memory, two otherwise
        // (row-column decomposition). Pass count is refined by the
        // model, which knows the local memory size; assume 2 here for
        // large transforms.
        double pts = dn * (dk ? dk : 1.0);
        double passes = pts * es <= 256.0 * 1024.0 ? 1.0 : 2.0;
        return passes * 2.0 * pts * es * dm;
      }
      case AccelKind::RESHP:
        return dm * dn * es * 2.0;
      default:
        panic("trafficBytes: bad AccelKind");
    }
}

} // namespace mealib::accel
