#include "accel/config.hh"

#include <cmath>

#include "common/logging.hh"
#include "hwmodel/profile.hh"

namespace mealib::accel {

// The Table 5 synthesis constants and default configurations live in
// the hardware-model registry (src/hwmodel/presets.cc); these factories
// remain as the module-local spelling. The configuration *scaling laws*
// below (leakage floor, DVFS exponent, area split) stay here: they are
// modeling assumptions of the Fig. 11 design-space sweep, not Table
// values.

AccelConfig
defaultConfig(AccelKind kind)
{
    return hwmodel::accelDefaultConfig(kind);
}

SynthesisConstants
synthesis(AccelKind kind)
{
    return hwmodel::accelSynthesis(kind);
}

double
logicPowerW(AccelKind kind, const AccelConfig &cfg)
{
    SynthesisConstants s = synthesis(kind);
    AccelConfig def = defaultConfig(kind);
    double core_scale = static_cast<double>(cfg.tiles * cfg.coresPerTile) /
                        static_cast<double>(def.tiles * def.coresPerTile);
    double freq_scale = cfg.freq / 1.0_GHz;
    // 30% leakage floor (scales with area/cores); dynamic power scales
    // superlinearly with clock because higher frequencies need higher
    // voltage (DVFS: P ~ f * V^2 with V tracking f).
    return s.logicPowerW * core_scale *
           (0.3 + 0.7 * std::pow(freq_scale, 2.2));
}

double
areaMm2(AccelKind kind, const AccelConfig &cfg)
{
    SynthesisConstants s = synthesis(kind);
    AccelConfig def = defaultConfig(kind);
    double core_scale = static_cast<double>(cfg.tiles * cfg.coresPerTile) /
                        static_cast<double>(def.tiles * def.coresPerTile);
    double lm_scale = static_cast<double>(cfg.localMemKiB) /
                      static_cast<double>(def.localMemKiB);
    // Half the area is datapath (PE count), half is local memory.
    return s.areaMm2 * (0.5 * core_scale + 0.5 * lm_scale);
}

} // namespace mealib::accel
