#include "accel/config.hh"

#include <cmath>

#include "common/logging.hh"

namespace mealib::accel {

AccelConfig
defaultConfig(AccelKind kind)
{
    AccelConfig c;
    switch (kind) {
      case AccelKind::AXPY:
      case AccelKind::DOT:
        // Streaming BLAS-1: wide but shallow datapaths.
        c.coresPerTile = 2;
        break;
      case AccelKind::GEMV:
        c.coresPerTile = 4;
        break;
      case AccelKind::SPMV:
        // Many independent gather/MAC lanes to tolerate random-access
        // latency; hence the large Table 5 area (14.17 mm^2).
        c.coresPerTile = 8;
        c.localMemKiB = 128;
        break;
      case AccelKind::RESMP:
        c.coresPerTile = 4;
        break;
      case AccelKind::FFT:
        // Radix pipelines with big ping-pong buffers (16.13 mm^2).
        c.coresPerTile = 8;
        c.localMemKiB = 256;
        c.blockElems = 8192;
        break;
      case AccelKind::RESHP:
        // Lives on the DRAM logic layer next to the reshape unit.
        c.coresPerTile = 1;
        break;
      default:
        panic("defaultConfig: bad kind");
    }
    return c;
}

SynthesisConstants
synthesis(AccelKind kind)
{
    // logicPowerW is chosen so that logic + simulated 3D-DRAM power at
    // the default configuration reproduces the Table 5 "Power" column
    // (which the paper states includes the DRAM power). areaMm2 is the
    // Table 5 area. computeUtil reflects how well the datapath streams:
    // regular kernels sustain ~90% of issue, gather-bound SPMV far less.
    switch (kind) {
      case AccelKind::AXPY:
        return {18.4, 1.38, 0.90};
      case AccelKind::DOT:
        return {18.4, 1.81, 0.90};
      case AccelKind::GEMV:
        return {18.6, 2.45, 0.90};
      case AccelKind::SPMV:
        return {11.5, 14.17, 0.25};
      case AccelKind::RESMP:
        return {6.0, 2.64, 0.50};
      case AccelKind::FFT:
        return {13.6, 16.13, 0.75};
      case AccelKind::RESHP:
        return {17.6, 0.0, 1.0}; // area accounted on the DRAM logic layer
      default:
        panic("synthesis: bad kind");
    }
}

double
logicPowerW(AccelKind kind, const AccelConfig &cfg)
{
    SynthesisConstants s = synthesis(kind);
    AccelConfig def = defaultConfig(kind);
    double core_scale = static_cast<double>(cfg.tiles * cfg.coresPerTile) /
                        static_cast<double>(def.tiles * def.coresPerTile);
    double freq_scale = cfg.freq / 1.0_GHz;
    // 30% leakage floor (scales with area/cores); dynamic power scales
    // superlinearly with clock because higher frequencies need higher
    // voltage (DVFS: P ~ f * V^2 with V tracking f).
    return s.logicPowerW * core_scale *
           (0.3 + 0.7 * std::pow(freq_scale, 2.2));
}

double
areaMm2(AccelKind kind, const AccelConfig &cfg)
{
    SynthesisConstants s = synthesis(kind);
    AccelConfig def = defaultConfig(kind);
    double core_scale = static_cast<double>(cfg.tiles * cfg.coresPerTile) /
                        static_cast<double>(def.tiles * def.coresPerTile);
    double lm_scale = static_cast<double>(cfg.localMemKiB) /
                      static_cast<double>(def.localMemKiB);
    // Half the area is datapath (PE count), half is local memory.
    return s.areaMm2 * (0.5 * core_scale + 0.5 * lm_scale);
}

} // namespace mealib::accel
