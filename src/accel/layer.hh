/**
 * @file
 * The accelerator layer (paper Sec. 2.2, Figs. 4-5): per-vault tiles of
 * PEs with local memories behind a mesh, driven by a centralized
 * configuration unit (FetchUnit + IMEM + DecodeUnit).
 *
 * AcceleratorLayer::execute() is the DecodeUnit: it walks a decoded
 * descriptor pass by pass, functionally computes every COMP against the
 * simulated physical memory, and accounts time/energy through the
 * per-kind analytical models. Chained COMPs inside one PASS stream
 * intermediates tile-to-tile instead of round-tripping through DRAM —
 * the hardware-chaining benefit measured in Fig. 12a.
 */

#ifndef MEALIB_ACCEL_LAYER_HH
#define MEALIB_ACCEL_LAYER_HH

#include <array>
#include <memory>

#include "accel/descriptor.hh"
#include "accel/model.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "dram/physmem.hh"
#include "dram/stack.hh"
#include "noc/mesh.hh"

namespace mealib::accel {

/** Fixed costs of the configuration infrastructure. */
struct ConfigCosts
{
    double fetchPerInstrS = 0.2e-6;  //!< FU: IMEM load + decode per instr
    double accelInitS = 2.0e-6;      //!< per-accelerator configuration
    double passStartS = 0.5e-6;      //!< DU pass kickoff / completion poll
    double configUnitPowerW = 0.35;  //!< CU power while configuring
};

/** Result of executing one descriptor on the layer. */
struct ExecStats
{
    Cost total;               //!< everything below combined
    Cost invocation;          //!< descriptor fetch + config + kickoff
    Cost remote;              //!< inter-stack link traffic (if any)
    double remoteBytes = 0.0; //!< bytes that crossed stack links
    Breakdown timeByAccel;    //!< seconds keyed by accelerator name
    Breakdown energyByAccel;  //!< joules keyed by accelerator name
    /** Joules keyed by physical component ("dram"/"logic"/"noc");
     * sums to the accelerator-execution share of @c total. */
    Breakdown energyByComponent;
    std::uint64_t compsExecuted = 0; //!< expanded COMP count
    std::uint64_t passes = 0;
    double bytesMoved = 0.0;  //!< total DRAM traffic
    double flops = 0.0;

    // --- fault-injection outcome (filled by the runtime) ---------------
    unsigned retries = 0;     //!< failed attempts absorbed by retry
    bool fellBack = false;    //!< completed on the host, not this layer
    Cost faultPenalty;        //!< retry/backoff/watchdog cost included
                              //!< in @c total (zero when faults are off)

    // --- integrity & checkpoint outcome (filled by the runtime) --------
    /** Operand verification + checkpoint journaling cost, included in
     * @c total (zero unless integrity/checkpointing is enabled). */
    Cost integrity;
    /** Checkpoint snapshots written for this command. */
    std::uint64_t checkpoints = 0;
    /** Completed after resuming from a committed checkpoint. */
    bool resumed = false;
};

/** The accelerator layer attached to one memory stack. */
class AcceleratorLayer
{
  public:
    /**
     * @param dram the stack the layer sits under
     * @param mesh the inter-tile network parameters
     * @param functional when false, skip the functional kernels and only
     *        account cost (used for paper-scale model sweeps whose
     *        buffers would not fit the functional backing store)
     */
    AcceleratorLayer(const dram::DramParams &dram,
                     const noc::MeshParams &mesh, bool functional = true);

    /**
     * Execute @p prog against @p mem. The caller must hold the stack's
     * accelerator ownership (the runtime's mealib_acc_execute does).
     */
    ExecStats execute(const DescriptorProgram &prog, dram::PhysMem &mem);

    /** Model for one accelerator kind (for design-space queries). */
    const AccelModel &model(AccelKind kind) const;

    const ConfigCosts &costs() const { return costs_; }
    bool functional() const { return functional_; }

  private:
    /** Functionally compute one COMP at one loop index. */
    void executeComp(const OpCall &call,
                     const std::array<std::uint32_t, kMaxLoopDims> &idx,
                     dram::PhysMem &mem) const;

    /** Account one COMP (aggregated over @p loop) into @p stats. */
    void accountComp(const OpCall &call, const LoopSpec &loop,
                     ExecStats &stats) const;

    /** Credit for DRAM traffic avoided by hardware chaining. */
    void creditChaining(const OpCall &producer, const OpCall &consumer,
                        const LoopSpec &loop, ExecStats &stats) const;

    dram::DramParams dramParams_;
    ConfigCosts costs_;
    bool functional_;
    std::array<std::unique_ptr<AccelModel>,
               static_cast<std::size_t>(AccelKind::kCount)>
        models_;
};

} // namespace mealib::accel

#endif // MEALIB_ACCEL_LAYER_HH
