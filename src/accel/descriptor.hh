/**
 * @file
 * The accelerator descriptor (paper Sec. 2.3): a physically contiguous
 * memory image with three regions —
 *
 *   Control Region (CR):    command word (START/DONE) + instruction count
 *   Instruction Region (IR): COMP / PASS_END / LOOP instructions
 *   Parameter Region (PR):  serialized per-invocation parameters
 *
 * The host builds this image in the command space and writes START; the
 * configuration unit (FetchUnit/IMEM/DecodeUnit, Fig. 5) then parses and
 * executes it. DescriptorProgram is the in-memory form; encode()/decode()
 * convert to/from the binary image.
 */

#ifndef MEALIB_ACCEL_DESCRIPTOR_HH
#define MEALIB_ACCEL_DESCRIPTOR_HH

#include <cstdint>
#include <vector>

#include "accel/ops.hh"

namespace mealib::accel {

/** CR command values. */
enum class Command : std::uint64_t
{
    Idle = 0,
    Start = 1,
    Done = 2,
};

/** Instruction opcodes beyond the accelerator kinds. */
inline constexpr std::uint8_t kOpcodePassEnd = 0x10;
inline constexpr std::uint8_t kOpcodeLoop = 0x11;

/** One IR instruction in decoded form. */
struct Instr
{
    enum class Type
    {
        Comp,    //!< invoke one accelerator
        PassEnd, //!< end of a PASS (datapath boundary)
        Loop,    //!< repeat the following @c bodyCount instructions
    };

    Type type = Type::Comp;
    OpCall call;               //!< valid for Comp
    LoopSpec loop;             //!< valid for Loop
    std::uint32_t bodyCount = 0; //!< valid for Loop: instrs in the body
};

/** A full accelerator program (decoded descriptor). */
struct DescriptorProgram
{
    std::vector<Instr> instrs;

    /** Append a COMP instruction. */
    void
    addComp(const OpCall &call)
    {
        Instr i;
        i.type = Instr::Type::Comp;
        i.call = call;
        instrs.push_back(i);
    }

    /** Append a PASS_END marker. */
    void
    addPassEnd()
    {
        Instr i;
        i.type = Instr::Type::PassEnd;
        instrs.push_back(i);
    }

    /** Append a LOOP head covering the next @p bodyCount instructions. */
    void
    addLoop(const LoopSpec &loop, std::uint32_t bodyCount)
    {
        Instr i;
        i.type = Instr::Type::Loop;
        i.loop = loop;
        i.bodyCount = bodyCount;
        instrs.push_back(i);
    }

    /** fatal() if the program is structurally invalid. */
    void validate() const;

    /** Number of accelerator invocations including loop expansion. */
    std::uint64_t expandedCompCount() const;
};

/** Byte offsets of the binary image. */
inline constexpr std::uint64_t kCrBytes = 32;
inline constexpr std::uint64_t kInstrBytes = 32;

/** Serialize @p prog into a descriptor image (CR command = Idle). */
std::vector<std::uint8_t> encode(const DescriptorProgram &prog);

/** Parse a descriptor image; fatal() on malformed input. */
DescriptorProgram decode(const std::uint8_t *data, std::size_t size);

/** Read/write the CR command word of an encoded image. */
Command readCommand(const std::uint8_t *image, std::size_t size);
void writeCommand(std::uint8_t *image, std::size_t size, Command cmd);

/**
 * Content hash of @p prog over every field that encode() serializes
 * (FNV-1a). Two programs with equal hashes encode to the same image
 * modulo astronomically unlikely collisions; callers memoizing encoded
 * images guard hash hits with sameProgram().
 */
std::uint64_t programHash(const DescriptorProgram &prog);

/** Field-wise equality of two programs (the collision guard). */
bool sameProgram(const DescriptorProgram &a, const DescriptorProgram &b);

} // namespace mealib::accel

#endif // MEALIB_ACCEL_DESCRIPTOR_HH
