#include "accel/descriptor.hh"

#include <cstring>

#include "common/logging.hh"

namespace mealib::accel {

namespace {

/** Little-endian byte writer for the PR. */
class Writer
{
  public:
    explicit Writer(std::vector<std::uint8_t> &buf) : buf_(buf) {}

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    f32(float v)
    {
        std::uint32_t bits;
        std::memcpy(&bits, &v, 4);
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
    }

  private:
    std::vector<std::uint8_t> &buf_;
};

/** Little-endian byte reader for the PR. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    std::uint64_t
    u64()
    {
        fatalIf(pos_ + 8 > size_, "descriptor: truncated parameter block");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    float
    f32()
    {
        fatalIf(pos_ + 4 > size_, "descriptor: truncated parameter block");
        std::uint32_t bits = 0;
        for (int i = 0; i < 4; ++i)
            bits |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        float v;
        std::memcpy(&v, &bits, 4);
        return v;
    }

    std::size_t pos() const { return pos_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

void
writeOperand(Writer &w, const OperandRef &o)
{
    w.u64(o.base);
    for (unsigned d = 0; d < kMaxLoopDims; ++d)
        w.i64(o.stride[d]);
}

OperandRef
readOperand(Reader &r)
{
    OperandRef o;
    o.base = r.u64();
    for (unsigned d = 0; d < kMaxLoopDims; ++d)
        o.stride[d] = r.i64();
    return o;
}

void
writeCall(Writer &w, const OpCall &c)
{
    w.u64(static_cast<std::uint64_t>(c.kind));
    w.u64(c.n);
    w.u64(c.m);
    w.u64(c.k);
    w.i64(c.inc0);
    w.i64(c.inc1);
    w.f32(c.alpha);
    w.f32(c.beta);
    w.u64((c.complexData ? 1u : 0u) | (c.conjugate ? 2u : 0u));
    w.i64(c.fftDir);
    w.u64(c.resampleKind);
    writeOperand(w, c.in0);
    writeOperand(w, c.in1);
    writeOperand(w, c.in2);
    writeOperand(w, c.in3);
    writeOperand(w, c.out);
}

OpCall
readCall(Reader &r)
{
    OpCall c;
    std::uint64_t kind = r.u64();
    fatalIf(kind >= static_cast<std::uint64_t>(AccelKind::kCount),
            "descriptor: bad accelerator opcode ", kind);
    c.kind = static_cast<AccelKind>(kind);
    c.n = r.u64();
    c.m = r.u64();
    c.k = r.u64();
    c.inc0 = r.i64();
    c.inc1 = r.i64();
    c.alpha = r.f32();
    c.beta = r.f32();
    std::uint64_t flags = r.u64();
    c.complexData = (flags & 1u) != 0;
    c.conjugate = (flags & 2u) != 0;
    c.fftDir = static_cast<std::int32_t>(r.i64());
    c.resampleKind = static_cast<std::uint32_t>(r.u64());
    c.in0 = readOperand(r);
    c.in1 = readOperand(r);
    c.in2 = readOperand(r);
    c.in3 = readOperand(r);
    c.out = readOperand(r);
    return c;
}

void
writeLoop(Writer &w, const LoopSpec &l)
{
    for (unsigned d = 0; d < kMaxLoopDims; ++d)
        w.u64(l.dims[d]);
}

LoopSpec
readLoop(Reader &r)
{
    LoopSpec l;
    for (unsigned d = 0; d < kMaxLoopDims; ++d) {
        std::uint64_t v = r.u64();
        fatalIf(v == 0 || v > 0xffffffffull,
                "descriptor: bad loop extent ", v);
        l.dims[d] = static_cast<std::uint32_t>(v);
    }
    return l;
}

void
putU64(std::vector<std::uint8_t> &buf, std::size_t off, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
getU64(const std::uint8_t *data, std::size_t off)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data[off + static_cast<
                 std::size_t>(i)]) << (8 * i);
    return v;
}

} // namespace

void
DescriptorProgram::validate() const
{
    fatalIf(instrs.empty(), "descriptor: empty program");
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const Instr &in = instrs[i];
        if (in.type == Instr::Type::Loop) {
            fatalIf(in.bodyCount == 0, "descriptor: empty LOOP body");
            fatalIf(i + in.bodyCount >= instrs.size(),
                    "descriptor: LOOP body exceeds program");
            // Nested loops are not supported by the decode unit; the
            // multi-dimensional LoopSpec covers nests instead.
            for (std::size_t j = i + 1; j <= i + in.bodyCount; ++j)
                fatalIf(instrs[j].type == Instr::Type::Loop,
                        "descriptor: nested LOOP blocks not supported");
        }
    }
    fatalIf(instrs.back().type != Instr::Type::PassEnd,
            "descriptor: program must end with PASS_END");
}

std::uint64_t
DescriptorProgram::expandedCompCount() const
{
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const Instr &in = instrs[i];
        if (in.type == Instr::Type::Comp) {
            count += 1;
        } else if (in.type == Instr::Type::Loop) {
            std::uint64_t body = 0;
            for (std::size_t j = i + 1;
                 j <= i + in.bodyCount && j < instrs.size(); ++j)
                body += instrs[j].type == Instr::Type::Comp ? 1 : 0;
            count += body * in.loop.iterations();
            i += in.bodyCount;
        }
    }
    return count;
}

std::vector<std::uint8_t>
encode(const DescriptorProgram &prog)
{
    prog.validate();

    const std::uint64_t n = prog.instrs.size();
    const std::uint64_t ir_off = kCrBytes;
    const std::uint64_t pr_off = ir_off + n * kInstrBytes;

    // Build the PR first, recording each instruction's parameter slice.
    std::vector<std::uint8_t> pr;
    struct Slot
    {
        std::uint64_t off;
        std::uint64_t size;
    };
    std::vector<Slot> slots;
    for (const Instr &in : prog.instrs) {
        std::uint64_t start = pr.size();
        Writer w(pr);
        if (in.type == Instr::Type::Comp)
            writeCall(w, in.call);
        else if (in.type == Instr::Type::Loop)
            writeLoop(w, in.loop);
        slots.push_back({start, pr.size() - start});
    }

    std::vector<std::uint8_t> image(pr_off + pr.size(), 0);
    putU64(image, 0, static_cast<std::uint64_t>(Command::Idle));
    putU64(image, 8, n);
    putU64(image, 16, ir_off);
    putU64(image, 24, pr_off);

    for (std::uint64_t i = 0; i < n; ++i) {
        const Instr &in = prog.instrs[static_cast<std::size_t>(i)];
        std::uint64_t base = ir_off + i * kInstrBytes;
        std::uint8_t opcode;
        switch (in.type) {
          case Instr::Type::Comp:
            opcode = static_cast<std::uint8_t>(in.call.kind);
            break;
          case Instr::Type::PassEnd:
            opcode = kOpcodePassEnd;
            break;
          case Instr::Type::Loop:
            opcode = kOpcodeLoop;
            break;
          default:
            panic("encode: bad instruction type");
        }
        putU64(image, base, opcode);
        putU64(image, base + 8,
               pr_off + slots[static_cast<std::size_t>(i)].off);
        putU64(image, base + 16, slots[static_cast<std::size_t>(i)].size);
        putU64(image, base + 24, in.bodyCount);
    }
    std::memcpy(image.data() + pr_off, pr.data(), pr.size());
    return image;
}

DescriptorProgram
decode(const std::uint8_t *data, std::size_t size)
{
    fatalIf(data == nullptr || size < kCrBytes,
            "descriptor: image too small");
    std::uint64_t n = getU64(data, 8);
    std::uint64_t ir_off = getU64(data, 16);
    std::uint64_t pr_off = getU64(data, 24);
    fatalIf(ir_off + n * kInstrBytes > size,
            "descriptor: IR exceeds image");
    fatalIf(pr_off > size, "descriptor: PR offset exceeds image");

    DescriptorProgram prog;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t base = ir_off + i * kInstrBytes;
        std::uint64_t opcode = getU64(data, base);
        std::uint64_t paddr = getU64(data, base + 8);
        std::uint64_t psize = getU64(data, base + 16);
        std::uint64_t aux = getU64(data, base + 24);
        fatalIf(paddr + psize > size,
                "descriptor: parameter block exceeds image");

        Instr in;
        if (opcode < static_cast<std::uint64_t>(AccelKind::kCount)) {
            in.type = Instr::Type::Comp;
            Reader r(data + paddr, psize);
            in.call = readCall(r);
            fatalIf(static_cast<std::uint64_t>(in.call.kind) != opcode,
                    "descriptor: opcode/parameter kind mismatch");
        } else if (opcode == kOpcodePassEnd) {
            in.type = Instr::Type::PassEnd;
        } else if (opcode == kOpcodeLoop) {
            in.type = Instr::Type::Loop;
            Reader r(data + paddr, psize);
            in.loop = readLoop(r);
            in.bodyCount = static_cast<std::uint32_t>(aux);
        } else {
            fatal("descriptor: unknown opcode ", opcode);
        }
        prog.instrs.push_back(in);
    }
    prog.validate();
    return prog;
}

namespace {

/** FNV-1a accumulator for programHash(). */
struct Fnv
{
    std::uint64_t h = 1469598103934665603ull;

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= static_cast<std::uint8_t>(v >> (8 * i));
            h *= 1099511628211ull;
        }
    }

    void
    f32(float v)
    {
        std::uint32_t bits;
        std::memcpy(&bits, &v, 4);
        u64(bits);
    }

    void
    operand(const OperandRef &o)
    {
        u64(o.base);
        for (unsigned d = 0; d < kMaxLoopDims; ++d)
            u64(static_cast<std::uint64_t>(o.stride[d]));
    }
};

bool
sameOperand(const OperandRef &a, const OperandRef &b)
{
    return a.base == b.base && a.stride == b.stride;
}

bool
sameCall(const OpCall &a, const OpCall &b)
{
    // Float fields compare by bit pattern: the hash and encode() both
    // work on the raw bits, so -0.0f vs 0.0f must not alias.
    std::uint32_t aa, ab, ba, bb;
    std::memcpy(&aa, &a.alpha, 4);
    std::memcpy(&ba, &b.alpha, 4);
    std::memcpy(&ab, &a.beta, 4);
    std::memcpy(&bb, &b.beta, 4);
    return a.kind == b.kind && a.n == b.n && a.m == b.m && a.k == b.k &&
           a.inc0 == b.inc0 && a.inc1 == b.inc1 && aa == ba &&
           ab == bb && a.complexData == b.complexData &&
           a.conjugate == b.conjugate && a.fftDir == b.fftDir &&
           a.resampleKind == b.resampleKind &&
           sameOperand(a.in0, b.in0) && sameOperand(a.in1, b.in1) &&
           sameOperand(a.in2, b.in2) && sameOperand(a.in3, b.in3) &&
           sameOperand(a.out, b.out);
}

} // namespace

std::uint64_t
programHash(const DescriptorProgram &prog)
{
    Fnv f;
    f.u64(prog.instrs.size());
    for (const Instr &in : prog.instrs) {
        f.u64(static_cast<std::uint64_t>(in.type));
        switch (in.type) {
          case Instr::Type::Comp: {
            const OpCall &c = in.call;
            f.u64(static_cast<std::uint64_t>(c.kind));
            f.u64(c.n);
            f.u64(c.m);
            f.u64(c.k);
            f.u64(static_cast<std::uint64_t>(c.inc0));
            f.u64(static_cast<std::uint64_t>(c.inc1));
            f.f32(c.alpha);
            f.f32(c.beta);
            f.u64((c.complexData ? 1u : 0u) | (c.conjugate ? 2u : 0u));
            f.u64(static_cast<std::uint64_t>(c.fftDir));
            f.u64(c.resampleKind);
            f.operand(c.in0);
            f.operand(c.in1);
            f.operand(c.in2);
            f.operand(c.in3);
            f.operand(c.out);
            break;
          }
          case Instr::Type::Loop:
            for (unsigned d = 0; d < kMaxLoopDims; ++d)
                f.u64(in.loop.dims[d]);
            f.u64(in.bodyCount);
            break;
          case Instr::Type::PassEnd:
            break;
        }
    }
    return f.h;
}

bool
sameProgram(const DescriptorProgram &a, const DescriptorProgram &b)
{
    if (a.instrs.size() != b.instrs.size())
        return false;
    for (std::size_t i = 0; i < a.instrs.size(); ++i) {
        const Instr &x = a.instrs[i];
        const Instr &y = b.instrs[i];
        if (x.type != y.type)
            return false;
        switch (x.type) {
          case Instr::Type::Comp:
            if (!sameCall(x.call, y.call))
                return false;
            break;
          case Instr::Type::Loop:
            if (x.loop.dims != y.loop.dims ||
                x.bodyCount != y.bodyCount)
                return false;
            break;
          case Instr::Type::PassEnd:
            break;
        }
    }
    return true;
}

Command
readCommand(const std::uint8_t *image, std::size_t size)
{
    fatalIf(size < kCrBytes, "descriptor: image too small");
    return static_cast<Command>(getU64(image, 0));
}

void
writeCommand(std::uint8_t *image, std::size_t size, Command cmd)
{
    fatalIf(size < kCrBytes, "descriptor: image too small");
    for (int i = 0; i < 8; ++i)
        image[i] = static_cast<std::uint8_t>(
            static_cast<std::uint64_t>(cmd) >> (8 * i));
}

} // namespace mealib::accel
