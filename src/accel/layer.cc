#include "accel/layer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "minimkl/blas1.hh"
#include "minimkl/blas2.hh"
#include "minimkl/fft.hh"
#include "minimkl/resample.hh"
#include "minimkl/sparse.hh"
#include "minimkl/transpose.hh"

namespace mealib::accel {

namespace {

/** Elements a strided vector of length n spans. */
std::uint64_t
spanElems(std::uint64_t n, std::int64_t inc)
{
    if (n == 0)
        return 0;
    std::uint64_t mag = static_cast<std::uint64_t>(inc < 0 ? -inc : inc);
    return 1 + (n - 1) * mag;
}

/** Output bytes of one iteration of @p c (for the chaining credit). */
double
outputBytes(const OpCall &c)
{
    const double es = static_cast<double>(c.elemBytes());
    switch (c.kind) {
      case AccelKind::AXPY:
        return static_cast<double>(c.n) * es;
      case AccelKind::DOT:
        return es;
      case AccelKind::GEMV:
        return static_cast<double>(c.m) * es;
      case AccelKind::SPMV:
        return static_cast<double>(c.m) * 4.0;
      case AccelKind::RESMP:
        return static_cast<double>(c.m) * es;
      case AccelKind::FFT:
        return static_cast<double>(c.n) *
               static_cast<double>(std::max<std::uint64_t>(c.k, 1)) * es *
               static_cast<double>(c.m);
      case AccelKind::RESHP:
        return static_cast<double>(c.m) * static_cast<double>(c.n) * es;
      default:
        panic("outputBytes: bad kind");
    }
}

} // namespace

AcceleratorLayer::AcceleratorLayer(const dram::DramParams &dram,
                                   const noc::MeshParams &mesh,
                                   bool functional)
    : dramParams_(dram), functional_(functional)
{
    for (std::size_t k = 0; k < models_.size(); ++k) {
        auto kind = static_cast<AccelKind>(k);
        models_[k] = std::make_unique<AccelModel>(
            kind, defaultConfig(kind), dram, mesh);
    }
}

const AccelModel &
AcceleratorLayer::model(AccelKind kind) const
{
    return *models_[static_cast<std::size_t>(kind)];
}

void
AcceleratorLayer::executeComp(
    const OpCall &c, const std::array<std::uint32_t, kMaxLoopDims> &idx,
    dram::PhysMem &mem) const
{
    using mkl::cfloat;
    const Addr a0 = c.in0.at(idx);
    const Addr a1 = c.in1.at(idx);
    const Addr a2 = c.in2.at(idx);
    const Addr a3 = c.in3.at(idx);
    const Addr ao = c.out.at(idx);
    const auto n = static_cast<std::int64_t>(c.n);
    const auto m = static_cast<std::int64_t>(c.m);

    switch (c.kind) {
      case AccelKind::AXPY:
        if (c.complexData) {
            // Complex scalar packed as (alpha, beta).
            mkl::caxpy(n, {c.alpha, c.beta},
                       mem.ptr<cfloat>(a0, spanElems(c.n, c.inc0)),
                       c.inc0,
                       mem.ptr<cfloat>(ao, spanElems(c.n, c.inc1)),
                       c.inc1);
        } else {
            // Real AXPY is the axpby superset: y := alpha*x + beta*y.
            // cblas_saxpy maps to beta = 1.
            mkl::saxpby(n, c.alpha,
                        mem.ptr<float>(a0, spanElems(c.n, c.inc0)),
                        c.inc0, c.beta,
                        mem.ptr<float>(ao, spanElems(c.n, c.inc1)),
                        c.inc1);
        }
        break;
      case AccelKind::DOT:
        if (c.complexData) {
            const cfloat *x =
                mem.ptr<cfloat>(a0, spanElems(c.n, c.inc0));
            const cfloat *y =
                mem.ptr<cfloat>(a1, spanElems(c.n, c.inc1));
            *mem.ptr<cfloat>(ao, 1) =
                c.conjugate ? mkl::cdotc(n, x, c.inc0, y, c.inc1)
                            : mkl::cdotu(n, x, c.inc0, y, c.inc1);
        } else {
            *mem.ptr<float>(ao, 1) = mkl::sdot(
                n, mem.ptr<float>(a0, spanElems(c.n, c.inc0)), c.inc0,
                mem.ptr<float>(a1, spanElems(c.n, c.inc1)), c.inc1);
        }
        break;
      case AccelKind::GEMV:
        fatalIf(c.complexData, "GEMV accelerator: complex unsupported");
        mkl::sgemv(mkl::Order::RowMajor, mkl::Transpose::NoTrans, m, n,
                   c.alpha, mem.ptr<float>(a0, c.m * c.n),
                   static_cast<std::int64_t>(c.n),
                   mem.ptr<float>(a1, spanElems(c.n, c.inc0)), c.inc0,
                   c.beta, mem.ptr<float>(ao, c.m), 1);
        break;
      case AccelKind::SPMV:
        mkl::scsrmvRaw(m, mem.ptr<std::int64_t>(a0, c.m + 1),
                       mem.ptr<std::int32_t>(a1, c.k),
                       mem.ptr<float>(a2, c.k), mem.ptr<float>(a3, c.n),
                       mem.ptr<float>(ao, c.m));
        break;
      case AccelKind::RESMP: {
        auto kind = static_cast<mkl::InterpKind>(c.resampleKind);
        if (c.complexData) {
            mkl::resample1dc(mem.ptr<cfloat>(a0, c.n), n,
                             mem.ptr<cfloat>(ao, c.m), m, kind);
        } else {
            mkl::resample1d(mem.ptr<float>(a0, c.n), n,
                            mem.ptr<float>(ao, c.m), m, kind);
        }
        break;
      }
      case AccelKind::FFT: {
        fatalIf(!c.complexData, "FFT accelerator: data must be complex");
        auto dir = c.fftDir == -1 ? mkl::FftDirection::Forward
                                  : mkl::FftDirection::Inverse;
        std::uint64_t pts = c.n * std::max<std::uint64_t>(c.k, 1);
        const cfloat *in = mem.ptr<cfloat>(a0, pts * c.m);
        cfloat *out = mem.ptr<cfloat>(ao, pts * c.m);
        if (c.k > 0) {
            auto plan = mkl::FftPlan::dft2d(
                static_cast<std::int64_t>(c.k), n, dir);
            for (std::uint64_t b = 0; b < c.m; ++b)
                plan.execute(in + b * pts, out + b * pts);
        } else {
            mkl::FftPlan::dft1dBatched(n, m, n, dir).execute(in, out);
        }
        break;
      }
      case AccelKind::RESHP:
        if (c.complexData) {
            if (a0 == ao) {
                mkl::cimatcopy(mkl::Order::RowMajor,
                               mkl::Transpose::Trans, m, n,
                               {c.alpha, 0.0f},
                               mem.ptr<cfloat>(ao, c.m * c.n),
                               static_cast<std::int64_t>(c.n),
                               static_cast<std::int64_t>(c.m));
            } else {
                mkl::comatcopy(mkl::Order::RowMajor,
                               mkl::Transpose::Trans, m, n,
                               {c.alpha, 0.0f},
                               mem.ptr<cfloat>(a0, c.m * c.n),
                               static_cast<std::int64_t>(c.n),
                               mem.ptr<cfloat>(ao, c.m * c.n),
                               static_cast<std::int64_t>(c.m));
            }
        } else {
            if (a0 == ao) {
                mkl::simatcopy(mkl::Order::RowMajor,
                               mkl::Transpose::Trans, m, n, c.alpha,
                               mem.ptr<float>(ao, c.m * c.n),
                               static_cast<std::int64_t>(c.n),
                               static_cast<std::int64_t>(c.m));
            } else {
                mkl::somatcopy(mkl::Order::RowMajor,
                               mkl::Transpose::Trans, m, n, c.alpha,
                               mem.ptr<float>(a0, c.m * c.n),
                               static_cast<std::int64_t>(c.n),
                               mem.ptr<float>(ao, c.m * c.n),
                               static_cast<std::int64_t>(c.m));
            }
        }
        break;
      default:
        panic("executeComp: bad kind");
    }
}

void
AcceleratorLayer::accountComp(const OpCall &call, const LoopSpec &loop,
                              ExecStats &stats) const
{
    AccelEstimate est =
        models_[static_cast<std::size_t>(call.kind)]->estimate(call,
                                                               loop);
    const char *key = name(call.kind);
    stats.timeByAccel.add(key, est.total.seconds);
    stats.energyByAccel.add(key, est.total.joules);
    stats.energyByComponent.add("dram", est.dramEnergyJ);
    stats.energyByComponent.add("logic", est.logicEnergyJ);
    stats.energyByComponent.add("noc", est.nocEnergyJ);
    stats.total += est.total;
    stats.bytesMoved += est.bytes;
    stats.flops += est.flops;
}

void
AcceleratorLayer::creditChaining(const OpCall &producer,
                                 const OpCall &consumer,
                                 const LoopSpec &loop,
                                 ExecStats &stats) const
{
    // The intermediate buffer never round-trips through DRAM: the
    // producer's output streams across the mesh into the consumer's
    // tile. Credit one store plus one load of the intermediate.
    double iters = static_cast<double>(loop.iterations());
    double saved = 2.0 * outputBytes(producer) * iters;

    double bw = dramParams_.peakInternalBandwidth() * 0.8;
    double dt = saved / bw;
    const dram::EnergyParams &e = dramParams_.energy;
    double de = saved * 0.5 * (e.readJPerByte + e.writeJPerByte) +
                saved * e.tsvJPerByte +
                saved / static_cast<double>(dramParams_.org.rowBytes) *
                    e.activateJ;

    // Never credit more than half of what the pair actually spent.
    const char *pk = name(producer.kind);
    const char *ck = name(consumer.kind);
    double pair_t =
        stats.timeByAccel.get(pk) + stats.timeByAccel.get(ck);
    double pair_e =
        stats.energyByAccel.get(pk) + stats.energyByAccel.get(ck);
    dt = std::min(dt, 0.5 * pair_t);
    de = std::min(de, 0.5 * pair_e);

    stats.timeByAccel.add(pk, -dt / 2.0);
    stats.timeByAccel.add(ck, -dt / 2.0);
    stats.energyByAccel.add(pk, -de / 2.0);
    stats.energyByAccel.add(ck, -de / 2.0);
    stats.energyByComponent.add("dram", -de); // the credit is DRAM traffic
    stats.total.seconds -= dt;
    stats.total.joules -= de;
    stats.bytesMoved -= saved;
}

ExecStats
AcceleratorLayer::execute(const DescriptorProgram &prog,
                          dram::PhysMem &mem)
{
    prog.validate();
    ExecStats stats;

    // FetchUnit: pull the descriptor into IMEM and decode it.
    stats.invocation.seconds +=
        costs_.fetchPerInstrS * static_cast<double>(prog.instrs.size());

    LoopSpec active_loop;           // unit loop outside LOOP bodies
    std::uint32_t loop_remaining = 0;
    std::vector<OpCall> pass_comps; // comps of the pass being built
    LoopSpec pass_loop;

    auto flush_pass = [&]() {
        if (pass_comps.empty())
            return;
        stats.passes++;
        // DU: configure every accelerator in the pass, then kick off.
        stats.invocation.seconds +=
            costs_.passStartS +
            costs_.accelInitS * static_cast<double>(pass_comps.size());

        for (const OpCall &c : pass_comps)
            accountComp(c, pass_loop, stats);
        for (std::size_t i = 0; i + 1 < pass_comps.size(); ++i) {
            if (pass_comps[i + 1].in0.base == pass_comps[i].out.base)
                creditChaining(pass_comps[i], pass_comps[i + 1],
                               pass_loop, stats);
        }

        if (functional_) {
            std::array<std::uint32_t, kMaxLoopDims> idx{0, 0, 0, 0};
            std::uint64_t iters = pass_loop.iterations();
            for (std::uint64_t it = 0; it < iters; ++it) {
                for (const OpCall &c : pass_comps)
                    executeComp(c, idx, mem);
                for (unsigned d = kMaxLoopDims; d-- > 0;) {
                    if (++idx[d] < pass_loop.dims[d])
                        break;
                    idx[d] = 0;
                }
            }
        }
        stats.compsExecuted +=
            pass_comps.size() * pass_loop.iterations();
        pass_comps.clear();
    };

    for (const Instr &in : prog.instrs) {
        switch (in.type) {
          case Instr::Type::Loop:
            fatalIf(!pass_comps.empty(),
                    "descriptor: LOOP inside an open PASS");
            active_loop = in.loop;
            loop_remaining = in.bodyCount;
            continue; // the head itself doesn't consume body slots
          case Instr::Type::Comp:
            if (pass_comps.empty())
                pass_loop = loop_remaining ? active_loop : LoopSpec{};
            pass_comps.push_back(in.call);
            break;
          case Instr::Type::PassEnd:
            flush_pass();
            break;
        }
        if (loop_remaining && --loop_remaining == 0)
            active_loop = LoopSpec{};
    }
    flush_pass(); // tolerate a missing trailing PASS_END after validate()

    stats.invocation.joules =
        costs_.configUnitPowerW * stats.invocation.seconds;
    stats.total += stats.invocation;
    return stats;
}

} // namespace mealib::accel
