#include "apps/cg.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "dispatch/ops.hh"
#include "minimkl/blas1.hh"

namespace mealib::apps {

using accel::AccelKind;
using accel::DescriptorProgram;
using accel::OpCall;

mkl::CsrMatrix
cgTestMatrix(std::int64_t n, std::uint64_t seed)
{
    // Graph Laplacian of a random geometric graph plus diagonal
    // loading: symmetric positive definite by construction.
    Rng rng(seed);
    mkl::CsrMatrix g = mkl::randomGeometricGraph(n, 6.0, rng);
    std::vector<mkl::Triplet> trip;
    std::vector<float> degree(static_cast<std::size_t>(n), 0.0f);
    for (std::int64_t r = 0; r < g.rows; ++r) {
        for (std::int64_t k = g.rowPtr[r]; k < g.rowPtr[r + 1]; ++k) {
            trip.push_back({r, g.colIdx[k],
                            -g.vals[static_cast<std::size_t>(k)]});
            degree[static_cast<std::size_t>(r)] +=
                g.vals[static_cast<std::size_t>(k)];
        }
    }
    for (std::int64_t r = 0; r < n; ++r)
        trip.push_back({r, r, degree[static_cast<std::size_t>(r)] + 1.0f});
    return mkl::csrFromTriplets(n, n, std::move(trip));
}

CgResult
solveCgHost(const mkl::CsrMatrix &a, const std::vector<float> &b,
            const CgOptions &opts)
{
    a.validate();
    fatalIf(a.rows != a.cols, "cg: matrix must be square");
    fatalIf(static_cast<std::int64_t>(b.size()) != a.rows,
            "cg: rhs size mismatch");
    const std::int64_t n = a.rows;

    CgResult res;
    res.x.assign(b.size(), 0.0f);
    std::vector<float> r = b; // r = b - A*0
    std::vector<float> p = r;
    std::vector<float> ap(b.size());

    double bnorm = std::sqrt(static_cast<double>(
        dispatch::ops::sdot(n, b.data(), 1, b.data(), 1)));
    if (bnorm == 0.0) {
        res.converged = true;
        return res;
    }
    double rs = dispatch::ops::sdot(n, r.data(), 1, r.data(), 1);

    for (unsigned it = 0; it < opts.maxIterations; ++it) {
        dispatch::ops::scsrmv(a, p.data(), ap.data());
        double pap = dispatch::ops::sdot(n, p.data(), 1, ap.data(), 1);
        fatalIf(pap <= 0.0, "cg: matrix is not positive definite");
        float alpha = static_cast<float>(rs / pap);
        dispatch::ops::saxpy(n, alpha, p.data(), 1, res.x.data(), 1);
        dispatch::ops::saxpy(n, -alpha, ap.data(), 1, r.data(), 1);
        double rs_new = dispatch::ops::sdot(n, r.data(), 1, r.data(), 1);
        res.iterations = it + 1;
        if (std::sqrt(rs_new) <= opts.tolerance * bnorm) {
            res.converged = true;
            rs = rs_new;
            break;
        }
        float beta = static_cast<float>(rs_new / rs);
        // p := r + beta * p
        dispatch::ops::saxpby(n, 1.0f, r.data(), 1, beta, p.data(), 1);
        rs = rs_new;
    }
    res.residualNorm = std::sqrt(rs);
    return res;
}

namespace {

/** Bundle of reusable plans + arena buffers for the accelerated CG. */
struct CgPlans
{
    float *x, *r, *p, *ap, *dots; // dots[0] = p.Ap, dots[1] = r.r
};

OpCall
dotCall(runtime::MealibRuntime &rt, const float *a, const float *b,
        float *out, std::int64_t n)
{
    OpCall c;
    c.kind = AccelKind::DOT;
    c.n = static_cast<std::uint64_t>(n);
    c.in0.base = rt.physOf(a);
    c.in1.base = rt.physOf(b);
    c.out.base = rt.physOf(out);
    return c;
}

} // namespace

CgResult
solveCgMealib(const mkl::CsrMatrix &a, const std::vector<float> &b,
              runtime::MealibRuntime &rt, const CgOptions &opts)
{
    a.validate();
    fatalIf(a.rows != a.cols, "cg: matrix must be square");
    fatalIf(static_cast<std::int64_t>(b.size()) != a.rows,
            "cg: rhs size mismatch");
    const std::int64_t n = a.rows;
    const std::int64_t nnz = a.nnz();
    if (opts.exclusive)
        rt.resetAccounting();

    CgResult res;

    // Arena-resident state (mealib_mem_alloc semantics).
    auto *rowptr =
        static_cast<std::int64_t *>(rt.memAlloc((n + 1) * 8));
    auto *colidx = static_cast<std::int32_t *>(rt.memAlloc(nnz * 4));
    auto *vals = static_cast<float *>(rt.memAlloc(nnz * 4));
    auto *x = static_cast<float *>(rt.memAlloc(n * 4));
    auto *r = static_cast<float *>(rt.memAlloc(n * 4));
    auto *p = static_cast<float *>(rt.memAlloc(n * 4));
    auto *ap = static_cast<float *>(rt.memAlloc(n * 4));
    auto *dots = static_cast<float *>(rt.memAlloc(2 * 4));
    std::copy(a.rowPtr.begin(), a.rowPtr.end(), rowptr);
    std::copy(a.colIdx.begin(), a.colIdx.end(), colidx);
    std::copy(a.vals.begin(), a.vals.end(), vals);
    std::memset(x, 0, static_cast<std::size_t>(n) * 4);
    std::copy(b.begin(), b.end(), r);
    std::copy(b.begin(), b.end(), p);

    // Fixed-configuration plans, built ONCE and re-executed every
    // iteration (the Listing-2 reuse pattern).
    DescriptorProgram spmv_prog;
    {
        OpCall c;
        c.kind = AccelKind::SPMV;
        c.m = static_cast<std::uint64_t>(n);
        c.n = static_cast<std::uint64_t>(n);
        c.k = static_cast<std::uint64_t>(nnz);
        c.in0.base = rt.physOf(rowptr);
        c.in1.base = rt.physOf(colidx);
        c.in2.base = rt.physOf(vals);
        c.in3.base = rt.physOf(p);
        c.out.base = rt.physOf(ap);
        spmv_prog.addComp(c);
        spmv_prog.addPassEnd();
    }
    DescriptorProgram dots_prog; // both reductions in one descriptor
    dots_prog.addComp(dotCall(rt, p, ap, &dots[0], n));
    dots_prog.addPassEnd();
    dots_prog.addComp(dotCall(rt, r, r, &dots[1], n));
    dots_prog.addPassEnd();

    auto h_spmv = rt.accPlan(spmv_prog);
    auto h_dots = rt.accPlan(dots_prog);
    res.descriptors = 2;

    auto plan_axpby = [&](float alpha, const float *xin, float beta,
                          float *yout) {
        // alpha/beta change per iteration, so these plans are rebuilt —
        // the price of baking scalars into the Parameter Region.
        OpCall c;
        c.kind = AccelKind::AXPY;
        c.n = static_cast<std::uint64_t>(n);
        c.alpha = alpha;
        c.beta = beta;
        c.in0.base = rt.physOf(xin);
        c.out.base = rt.physOf(yout);
        DescriptorProgram prog;
        prog.addComp(c);
        prog.addPassEnd();
        res.descriptors++;
        res.executes++;
        return rt.accPlan(prog);
    };
    auto run_axpby = [&](float alpha, const float *xin, float beta,
                         float *yout) {
        auto h = plan_axpby(alpha, xin, beta, yout);
        rt.accExecute(h);
        rt.accDestroy(h);
    };

    double bnorm = std::sqrt(static_cast<double>(
        mkl::sdot(n, b.data(), 1, b.data(), 1)));
    if (bnorm == 0.0) {
        res.converged = true;
        res.x.assign(b.size(), 0.0f);
    }
    double rs = mkl::sdot(n, r, 1, r, 1);

    for (unsigned it = 0; !res.converged && it < opts.maxIterations;
         ++it) {
        rt.accExecute(h_spmv); // ap := A p
        rt.accExecute(h_dots); // dots = { p.ap, r.r }
        res.executes += 2;
        double pap = dots[0];
        fatalIf(pap <= 0.0, "cg: matrix is not positive definite");
        float alpha = static_cast<float>(rs / pap);
        // x += alpha p and r -= alpha ap touch disjoint vectors: submit
        // both and let the hazard tracker prove they may overlap.
        auto h_x = plan_axpby(alpha, p, 1.0f, x);
        auto h_r = plan_axpby(-alpha, ap, 1.0f, r);
        rt.accSubmit(h_x);
        rt.accSubmit(h_r);
        rt.waitAll();
        rt.accDestroy(h_x);
        rt.accDestroy(h_r);
        rt.accExecute(h_dots);          // refresh r.r after the update
        res.executes++;
        double rs_new = dots[1];
        res.iterations = it + 1;
        if (std::sqrt(rs_new) <= opts.tolerance * bnorm) {
            res.converged = true;
            rs = rs_new;
            break;
        }
        float beta = static_cast<float>(rs_new / rs);
        run_axpby(1.0f, r, beta, p); // p := r + beta p
        rs = rs_new;
    }

    rt.accDestroy(h_spmv);
    rt.accDestroy(h_dots);
    res.residualNorm = std::sqrt(rs);
    res.x.assign(x, x + n);
    if (opts.exclusive) {
        res.accel = rt.accounting().accel;
        res.invocation = rt.accounting().invocation;
    }

    for (void *ptr :
         {static_cast<void *>(rowptr), static_cast<void *>(colidx),
          static_cast<void *>(vals), static_cast<void *>(x),
          static_cast<void *>(r), static_cast<void *>(p),
          static_cast<void *>(ap), static_cast<void *>(dots)})
        rt.memFree(ptr);
    return res;
}

} // namespace mealib::apps
