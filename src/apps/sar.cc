#include "apps/sar.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"
#include "minimkl/fft.hh"
#include "minimkl/resample.hh"

namespace mealib::apps {

using accel::AccelKind;
using accel::DescriptorProgram;
using accel::LoopSpec;
using accel::OpCall;
using mkl::cfloat;

SarResult
runSarChain(std::uint64_t n, bool hardwareChaining,
            runtime::MealibRuntime &rt, std::uint64_t seed)
{
    fatalIf(n == 0 || (n & (n - 1)) != 0,
            "sar: image size must be a power of two");
    const std::uint64_t nin = n / 2; // range samples before upsampling
    SarResult res;

    const bool functional = rt.layer().functional();
    Addr a_in, a_mid, a_out;
    cfloat *in = nullptr, *out = nullptr;
    if (functional) {
        in = static_cast<cfloat *>(rt.memAlloc(n * nin * 8));
        auto *mid = static_cast<cfloat *>(rt.memAlloc(n * n * 8));
        out = static_cast<cfloat *>(rt.memAlloc(n * n * 8));
        a_in = rt.physOf(in);
        a_mid = rt.physOf(mid);
        a_out = rt.physOf(out);
        Rng rng(seed);
        for (std::uint64_t i = 0; i < n * nin; ++i)
            in[i] = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
        rt.noteHostWrite(in, n * nin * 8);
    } else {
        // Cost-only run: addresses are never dereferenced.
        const std::uint64_t cap =
            rt.stack().params().org.capacityBytes;
        a_in = 0;
        a_mid = cap / 4;
        a_out = cap / 2;
    }

    // Per-row pipeline: resample nin -> n (sinc), then FFT the row.
    OpCall resmp;
    resmp.kind = AccelKind::RESMP;
    resmp.n = nin;
    resmp.m = n;
    resmp.complexData = true;
    resmp.resampleKind = 2; // windowed sinc
    resmp.in0 = {a_in, {static_cast<std::int64_t>(nin * 8), 0, 0, 0}};
    resmp.out = {a_mid, {static_cast<std::int64_t>(n * 8), 0, 0, 0}};

    OpCall fft;
    fft.kind = AccelKind::FFT;
    fft.n = n;
    fft.m = 1;
    fft.complexData = true;
    fft.fftDir = -1;
    fft.in0 = {a_mid, {static_cast<std::int64_t>(n * 8), 0, 0, 0}};
    fft.out = {a_out, {static_cast<std::int64_t>(n * 8), 0, 0, 0}};

    LoopSpec rows;
    rows.dims = {static_cast<std::uint32_t>(n), 1, 1, 1};

    const double entry_s = rt.nowSeconds();
    if (hardwareChaining) {
        // One descriptor, one PASS: RESMP streams into FFT.
        DescriptorProgram d;
        d.addLoop(rows, 3);
        d.addComp(resmp);
        d.addComp(fft);
        d.addPassEnd();
        auto h = rt.accPlan(d);
        res.total += rt.accExecute(h).total;
        rt.accDestroy(h);
        res.descriptors = 1;
    } else {
        // Two invocations: the intermediate round-trips through DRAM and
        // the flush/START handshake is paid twice. Both are submitted
        // up front; the RAW hazard on `mid` orders the FFT after the
        // resampler exactly as the blocking pair would.
        DescriptorProgram d1;
        d1.addLoop(rows, 2);
        d1.addComp(resmp);
        d1.addPassEnd();
        DescriptorProgram d2;
        d2.addLoop(rows, 2);
        d2.addComp(fft);
        d2.addPassEnd();
        auto h1 = rt.accPlan(d1);
        auto h2 = rt.accPlan(d2);
        runtime::Event e1 = rt.accSubmit(h1);
        runtime::Event e2 = rt.accSubmit(h2);
        res.total += e1.wait().total;
        res.total += e2.wait().total;
        rt.accDestroy(h1);
        rt.accDestroy(h2);
        res.descriptors = 2;
    }
    res.criticalPathSeconds = rt.nowSeconds() - entry_s;

    if (functional) {
        res.image.assign(out, out + n * n);
        // The arena allocations persist on purpose only for the image
        // copy above; release them before returning.
        rt.memFree(in);
        rt.memFree(rt.virtOf(a_mid));
        rt.memFree(out);
    }
    return res;
}

FftLoopResult
runFftLoop(std::uint64_t n, std::uint64_t count, bool hardwareLoop,
           runtime::MealibRuntime &rt)
{
    fatalIf(n == 0 || (n & (n - 1)) != 0,
            "fft loop: size must be a power of two");
    FftLoopResult res;

    const bool functional = rt.layer().functional();
    const std::uint64_t image_bytes = n * n * 8;
    Addr a_in, a_out;
    void *in = nullptr, *out = nullptr;
    if (functional) {
        in = rt.memAlloc(image_bytes * count);
        out = rt.memAlloc(image_bytes * count);
        a_in = rt.physOf(in);
        a_out = rt.physOf(out);
    } else {
        const std::uint64_t cap =
            rt.stack().params().org.capacityBytes;
        a_in = 0;
        a_out = cap / 2;
    }

    OpCall fft;
    fft.kind = AccelKind::FFT;
    fft.n = n;
    fft.k = n; // 2D n x n transform
    fft.m = 1;
    fft.complexData = true;
    fft.fftDir = -1;
    fft.in0 = {a_in, {static_cast<std::int64_t>(image_bytes), 0, 0, 0}};
    fft.out = {a_out, {static_cast<std::int64_t>(image_bytes), 0, 0, 0}};

    const double entry_s = rt.nowSeconds();
    if (hardwareLoop) {
        DescriptorProgram d;
        LoopSpec loop;
        loop.dims = {static_cast<std::uint32_t>(count), 1, 1, 1};
        d.addLoop(loop, 2);
        d.addComp(fft);
        d.addPassEnd();
        auto h = rt.accPlan(d);
        res.total += rt.accExecute(h).total;
        rt.accDestroy(h);
        res.descriptors = 1;
    } else {
        // The software loop submits every descriptor before waiting:
        // each one still pays its own invocation, but on a multi-stack
        // runtime the disjoint transforms spread over the queues.
        std::vector<runtime::AccPlanHandle> handles;
        std::vector<runtime::Event> events;
        for (std::uint64_t i = 0; i < count; ++i) {
            OpCall one = fft;
            one.in0 = {a_in + (functional ? i * image_bytes : 0),
                       {0, 0, 0, 0}};
            one.out = {a_out + (functional ? i * image_bytes : 0),
                       {0, 0, 0, 0}};
            DescriptorProgram d;
            d.addComp(one);
            d.addPassEnd();
            handles.push_back(rt.accPlan(d));
            events.push_back(rt.accSubmit(handles.back()));
        }
        for (std::uint64_t i = 0; i < count; ++i) {
            res.total += events[static_cast<std::size_t>(i)].wait().total;
            rt.accDestroy(handles[static_cast<std::size_t>(i)]);
        }
        res.descriptors = count;
    }
    res.criticalPathSeconds = rt.nowSeconds() - entry_s;

    if (functional) {
        rt.memFree(in);
        rt.memFree(out);
    }
    return res;
}

} // namespace mealib::apps
