/**
 * @file
 * Space-Time Adaptive Processing (STAP), the paper's real-world
 * application (Sec. 3.1 Listing 1, Sec. 5.5, Table 4).
 *
 * The pipeline uses exactly the five library calls of Table 4:
 *
 *   1. fftwf_execute (guru rank-0): datacube copy to pulse-major  [RESHP]
 *   2. fftwf_execute (guru rank-1): batched doppler FFT           [FFT]
 *   3. cblas_cherk:  per-(doppler,block) covariance               [host]
 *   4. cblas_ctrsm:  adaptive-weight solves (x2, after Cholesky)  [host]
 *   5. cblas_cdotc_sub: nDop*nBlocks*nSteering*TBS inner products [DOT]
 *   6. cblas_saxpy:  output scaling                               [AXPY]
 *
 * runStapHost() executes everything through MiniMKL on the host model
 * (the paper's optimized multithreaded baseline); runStapMealib() routes
 * the memory-bounded calls through accelerator descriptors — compacted
 * into 3 descriptors exactly as the paper reports (Sec. 5.5) — while
 * cherk/ctrsm stay on the host. Both produce identical numerical output.
 */

#ifndef MEALIB_APPS_STAP_HH
#define MEALIB_APPS_STAP_HH

#include <cstdint>
#include <vector>

#include "common/ledger.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "minimkl/types.hh"
#include "runtime/runtime.hh"

namespace mealib::apps {

/** STAP problem dimensions (PERFECT-suite style). */
struct StapParams
{
    unsigned nChan = 16;     //!< antenna channels
    unsigned tdof = 3;       //!< temporal degrees of freedom
    unsigned nDop = 64;      //!< doppler bins (power of two)
    unsigned nBlocks = 4;    //!< range blocks
    unsigned nSteering = 16; //!< steering vectors
    unsigned tbs = 16;       //!< training-block size (cells per block)
    std::uint64_t seed = 42; //!< datacube generator seed

    unsigned
    nRange() const
    {
        return nBlocks * tbs;
    }

    /** Space-time snapshot vector length (TDOF * N_CHAN, Listing 1). */
    unsigned
    dofLen() const
    {
        return nChan * tdof;
    }

    /** Total cdotc_sub calls (16M for the paper's large set). */
    std::uint64_t
    dotCalls() const
    {
        return static_cast<std::uint64_t>(nDop) * nBlocks * nSteering *
               tbs;
    }

    /** The paper's three data sets (Fig. 13), scaled to run in seconds
     * while keeping the 16M-call structure of the large set. */
    static StapParams smallSet();
    static StapParams mediumSet();
    static StapParams largeSet();
};

/** Output and cost ledger of one STAP run. */
struct StapResult
{
    std::vector<mkl::cfloat> prods; //!< final products, for verification
    Cost host;        //!< compute-bounded stages (cherk/ctrsm/marshal)
    Cost accel;       //!< accelerator-executed stages
    Cost invocation;  //!< flush + descriptor + config overheads
    Breakdown timeByAccel;   //!< accel seconds keyed by kind
    Breakdown energyByAccel; //!< accel joules keyed by kind
    std::uint64_t descriptors = 0; //!< accelerator descriptors used
    std::uint64_t libraryCalls = 0; //!< logical library calls issued
    /** Overlap-aware wall clock of the run (the runtime's makespan).
     * Equals total().seconds for the blocking pipelines; smaller for
     * runStapMealibAsync when stacks and host work overlap. */
    double criticalPathSeconds = 0.0;
    /** Per-stage cost ledger of the run: the runtime's ledger for the
     * MEALib pipelines (plus the host package-idle charge), a locally
     * built one for the host baseline. ledger.total() == total(). */
    EnergyLedger ledger;

    Cost
    total() const
    {
        return host + accel + invocation;
    }
};

/** Run STAP entirely on the host (the optimized MKL baseline). */
StapResult runStapHost(const StapParams &p);

/**
 * Run STAP with memory-bounded calls on MEALib accelerators.
 *
 * @p exclusive means the run owns @p rt: its accounting is reset first
 * and the aggregate cost breakdown (host/accel/invocation, ledger,
 * makespan) is copied into the result. Pass false when @p rt is shared
 * between concurrent sessions — the run then leaves the aggregate
 * accounting untouched and fills only the functional fields (prods,
 * libraryCalls, descriptors); cost attribution comes from the calling
 * thread's session ledger (docs/SESSIONS.md).
 */
StapResult runStapMealib(const StapParams &p,
                         runtime::MealibRuntime &rt,
                         bool exclusive = true);

/**
 * runStapMealib with the weight/DOT/AXPY phase sliced by doppler bin:
 * each slice's buffers live on their own memory stack (memAllocOn), its
 * descriptor is accSubmit()ed to that stack, and the host computes the
 * next slice's adaptive weights while earlier slices' inner products run
 * near memory. Numerically identical to the blocking pipeline; the
 * overlap shows up as criticalPathSeconds < total().seconds.
 */
StapResult runStapMealibAsync(const StapParams &p,
                              runtime::MealibRuntime &rt,
                              bool exclusive = true);

} // namespace mealib::apps

#endif // MEALIB_APPS_STAP_HH
