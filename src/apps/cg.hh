/**
 * @file
 * Conjugate-gradient solver on MEALib.
 *
 * Not a paper experiment, but the paper's pitch — memory-bounded
 * library calls redirected to near-memory accelerators — applies
 * directly to iterative sparse solvers: every CG iteration is one SPMV,
 * two DOTs and three AXPYs, all Table-1 operations. This app
 * demonstrates the descriptor-reuse pattern of Listing 2: the SPMV and
 * AXPY plans are built once with mealib_acc_plan and re-executed every
 * iteration with mealib_acc_execute.
 */

#ifndef MEALIB_APPS_CG_HH
#define MEALIB_APPS_CG_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "minimkl/sparse.hh"
#include "runtime/runtime.hh"

namespace mealib::apps {

/** Result of one CG solve. */
struct CgResult
{
    std::vector<float> x;       //!< solution vector
    unsigned iterations = 0;    //!< iterations executed
    double residualNorm = 0.0;  //!< final ||b - Ax||
    bool converged = false;
    Cost accel;                 //!< accelerator-side cost (MEALib mode)
    Cost invocation;            //!< plan/flush overheads (MEALib mode)
    std::uint64_t descriptors = 0; //!< distinct plans built
    std::uint64_t executes = 0;    //!< mealib_acc_execute calls
};

/** Solver options. */
struct CgOptions
{
    unsigned maxIterations = 200;
    double tolerance = 1e-4; //!< on ||r|| / ||b||
    /** The solve owns the runtime: reset its accounting first and copy
     * the aggregate accel/invocation cost into the result. Set false
     * when the runtime is shared between concurrent sessions — the
     * solve then leaves the aggregate accounting untouched and cost
     * attribution comes from the calling thread's session ledger
     * (docs/SESSIONS.md). */
    bool exclusive = true;
};

/**
 * Solve A x = b for symmetric positive-definite CSR @p a on the host
 * (plain MiniMKL kernels). Reference implementation and oracle.
 */
CgResult solveCgHost(const mkl::CsrMatrix &a, const std::vector<float> &b,
                     const CgOptions &opts = {});

/**
 * The same solver with SPMV/DOT/AXPY routed through accelerator
 * descriptors. Plans are created once and re-executed per iteration.
 * Produces the same iterates as solveCgHost (identical kernels
 * underneath).
 */
CgResult solveCgMealib(const mkl::CsrMatrix &a,
                       const std::vector<float> &b,
                       runtime::MealibRuntime &rt,
                       const CgOptions &opts = {});

/** SPD test system: diagonally-loaded graph Laplacian of an RGG. */
mkl::CsrMatrix cgTestMatrix(std::int64_t n, std::uint64_t seed);

} // namespace mealib::apps

#endif // MEALIB_APPS_CG_HH
