#include "apps/stap.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"
#include "dispatch/models.hh"
#include "dispatch/ops.hh"
#include "hwmodel/profile.hh"
#include "mealib/platform.hh"
#include "minimkl/blas1.hh"
#include "minimkl/blas3.hh"
#include "minimkl/fft.hh"
#include "minimkl/transpose.hh"

namespace mealib::apps {

using accel::AccelKind;
using accel::DescriptorProgram;
using accel::LoopSpec;
using accel::OpCall;
using mkl::cfloat;

StapParams
StapParams::smallSet()
{
    StapParams p;
    p.nChan = 12; // smaller array -> smaller space-time vectors
    p.nDop = 64;
    p.nBlocks = 4;
    p.nSteering = 16;
    p.tbs = 16;
    return p; // 64K inner products
}

StapParams
StapParams::mediumSet()
{
    StapParams p;
    p.nChan = 14;
    p.nDop = 128;
    p.nBlocks = 8;
    p.nSteering = 32;
    p.tbs = 32;
    return p; // 1M inner products
}

StapParams
StapParams::largeSet()
{
    StapParams p;
    p.nDop = 256;
    p.nBlocks = 16;
    p.nSteering = 64;
    p.tbs = 64;
    return p; // 16.7M inner products, the paper's scale
}

namespace {

/** Synthetic datacube [chan][pulse][range] with a few injected tones. */
std::vector<cfloat>
generateCube(const StapParams &p)
{
    Rng rng(p.seed);
    std::vector<cfloat> cube(static_cast<std::size_t>(p.nChan) * p.nDop *
                             p.nRange());
    for (auto &v : cube)
        v = {rng.uniform(-0.1f, 0.1f), rng.uniform(-0.1f, 0.1f)};
    // Inject a moving target per channel so the doppler spectrum has
    // structure (keeps covariances well-conditioned too).
    for (unsigned ch = 0; ch < p.nChan; ++ch) {
        for (unsigned pu = 0; pu < p.nDop; ++pu) {
            for (unsigned r = 0; r < p.nRange(); r += 7) {
                double ph = 2.0 * M_PI *
                            (0.1 * pu + 0.01 * r + 0.2 * ch);
                std::size_t i =
                    (static_cast<std::size_t>(ch) * p.nDop + pu) *
                        p.nRange() +
                    r;
                cube[i] += cfloat(0.5f * std::cos(ph),
                                  0.5f * std::sin(ph));
            }
        }
    }
    return cube;
}

/** Unblocked complex Cholesky (lower) of a row-major n x n matrix. */
void
cpotrfLower(std::int64_t n, cfloat *a, std::int64_t lda)
{
    for (std::int64_t j = 0; j < n; ++j) {
        double diag = a[j * lda + j].real();
        for (std::int64_t k = 0; k < j; ++k)
            diag -= std::norm(a[j * lda + k]);
        fatalIf(diag <= 0.0, "cpotrf: matrix not positive definite");
        float d = static_cast<float>(std::sqrt(diag));
        a[j * lda + j] = {d, 0.0f};
        for (std::int64_t i = j + 1; i < n; ++i) {
            cfloat s = a[i * lda + j];
            for (std::int64_t k = 0; k < j; ++k)
                s -= a[i * lda + k] * std::conj(a[j * lda + k]);
            a[i * lda + j] = s / d;
        }
        // zero the strict upper triangle so trsm sees clean data
        for (std::int64_t k = j + 1; k < n; ++k)
            a[j * lda + k] = {};
    }
}

/** Steering matrix V: dofLen x nSteering, column sv per direction. */
std::vector<cfloat>
steeringMatrix(const StapParams &p)
{
    const unsigned l = p.dofLen();
    std::vector<cfloat> v(static_cast<std::size_t>(l) * p.nSteering);
    for (unsigned d = 0; d < l; ++d) {
        for (unsigned s = 0; s < p.nSteering; ++s) {
            double ph = 2.0 * M_PI * static_cast<double>(d * (s + 1)) /
                        static_cast<double>(l * p.nSteering);
            v[static_cast<std::size_t>(d) * p.nSteering + s] = {
                static_cast<float>(std::cos(ph)),
                static_cast<float>(std::sin(ph))};
        }
    }
    return v;
}

/**
 * Marshal space-time snapshots from doppler-space data for doppler bins
 * [dopLo, dopHi). doppler layout: [chan][range][dop]; snapshot layout:
 * [dop - dopLo][block][cell][dof] with dof = t * nChan + chan and the
 * t-th temporal tap reading doppler bin (dop + t) mod nDop.
 */
void
buildSnapshots(const StapParams &p, const cfloat *doppler, cfloat *snap,
               unsigned dopLo, unsigned dopHi)
{
    const unsigned l = p.dofLen();
    for (unsigned dop = dopLo; dop < dopHi; ++dop) {
        for (unsigned b = 0; b < p.nBlocks; ++b) {
            for (unsigned c = 0; c < p.tbs; ++c) {
                unsigned range = b * p.tbs + c;
                cfloat *out =
                    snap +
                    (((static_cast<std::size_t>(dop - dopLo) *
                           p.nBlocks +
                       b) *
                          p.tbs +
                      c)) *
                        l;
                for (unsigned t = 0; t < p.tdof; ++t) {
                    unsigned bin = (dop + t) % p.nDop;
                    for (unsigned ch = 0; ch < p.nChan; ++ch) {
                        out[t * p.nChan + ch] =
                            doppler[(static_cast<std::size_t>(ch) *
                                         p.nRange() +
                                     range) *
                                        p.nDop +
                                    bin];
                    }
                }
            }
        }
    }
}

/**
 * Covariance + Cholesky + two triangular solves per (dop, block) for
 * doppler bins [dopLo, dopHi); @p snap and @p weights address the slice
 * (index 0 is bin dopLo). Weights come out as [dop - dopLo][block][sv]
 * [dof] (Listing 1's layout).
 * @return the number of library calls issued (cherk + 2 ctrsm each).
 */
std::uint64_t
computeWeights(const StapParams &p, const cfloat *snap, cfloat *weights,
               unsigned dopLo, unsigned dopHi)
{
    const unsigned l = p.dofLen();
    const std::vector<cfloat> v = steeringMatrix(p);
    std::vector<cfloat> r(static_cast<std::size_t>(l) * l);
    std::vector<cfloat> y(static_cast<std::size_t>(l) * p.nSteering);
    std::uint64_t calls = 0;

    for (unsigned dop = dopLo; dop < dopHi; ++dop) {
        for (unsigned b = 0; b < p.nBlocks; ++b) {
            const cfloat *a =
                snap + ((static_cast<std::size_t>(dop - dopLo) *
                             p.nBlocks +
                         b) *
                        p.tbs) *
                           l;
            // R = A^H A over the training block (A is tbs x l).
            std::fill(r.begin(), r.end(), cfloat{});
            dispatch::ops::cherk(mkl::Order::RowMajor, mkl::Uplo::Lower,
                                 mkl::Transpose::ConjTrans, l, p.tbs,
                                 1.0f, a, l, 0.0f, r.data(), l);
            calls++;
            // Diagonal loading keeps the factorization well posed.
            for (unsigned d = 0; d < l; ++d)
                r[static_cast<std::size_t>(d) * l + d] +=
                    cfloat{0.1f * static_cast<float>(p.tbs), 0.0f};
            cpotrfLower(l, r.data(), l);

            // Solve R w = v via L y = v, then L^H w = y.
            std::copy(v.begin(), v.end(), y.begin());
            dispatch::ops::ctrsm(mkl::Order::RowMajor, mkl::Side::Left,
                                 mkl::Uplo::Lower, mkl::Transpose::NoTrans,
                                 mkl::Diag::NonUnit, l, p.nSteering,
                                 {1.0f, 0.0f}, r.data(), l, y.data(),
                                 p.nSteering);
            dispatch::ops::ctrsm(mkl::Order::RowMajor, mkl::Side::Left,
                                 mkl::Uplo::Lower,
                                 mkl::Transpose::ConjTrans,
                                 mkl::Diag::NonUnit, l, p.nSteering,
                                 {1.0f, 0.0f}, r.data(), l, y.data(),
                                 p.nSteering);
            calls += 2;

            // Repack column sv of y into the [sv][dof] weight layout.
            cfloat *w =
                weights +
                (static_cast<std::size_t>(dop - dopLo) * p.nBlocks +
                 b) *
                    p.nSteering * l;
            for (unsigned s = 0; s < p.nSteering; ++s)
                for (unsigned d = 0; d < l; ++d)
                    w[static_cast<std::size_t>(s) * l + d] =
                        y[static_cast<std::size_t>(d) * p.nSteering + s];
        }
    }
    return calls;
}

/** Host cost of the compute-bounded stages (cherk/ctrsm/Cholesky). */
host::KernelProfile
weightStageProfile(const StapParams &p)
{
    const double l = p.dofLen();
    const double count = static_cast<double>(p.nDop) * p.nBlocks;
    host::KernelProfile prof;
    prof.name = "cherk+ctrsm";
    // cherk: 4*l*(l+1)*k real flops; two trsm: 4*l^2*nSteering each;
    // Cholesky: (4/3)*l^3.
    prof.flops = count * (4.0 * l * (l + 1.0) * p.tbs +
                          8.0 * l * l * p.nSteering +
                          4.0 / 3.0 * l * l * l);
    prof.bytesRead = count * (p.tbs * l * 8.0 + l * l * 8.0);
    prof.bytesWritten = count * (l * p.nSteering * 8.0);
    // Small matrices (l = 12) leave vector lanes idle.
    prof.simdEff = 0.30;
    prof.memEff = 0.7;
    prof.parallelFraction = 0.95;
    return prof;
}

/** Host cost of snapshot marshalling + weight repacking (streaming). */
host::KernelProfile
marshalProfile(const StapParams &p)
{
    const double snap_bytes = static_cast<double>(p.dotCalls() /
                                                  p.nSteering) *
                              p.dofLen() * 8.0;
    const double w_bytes = static_cast<double>(p.nDop) * p.nBlocks *
                           p.nSteering * p.dofLen() * 8.0;
    host::KernelProfile prof;
    prof.name = "marshal";
    prof.bytesRead = snap_bytes + w_bytes;
    prof.bytesWritten = snap_bytes + w_bytes;
    prof.memEff = 0.4; // gather-style addressing
    prof.simdEff = 0.5;
    prof.flops = 1.0;
    return prof;
}

/** @p prof with its work scaled to a doppler-slice fraction @p f. */
host::KernelProfile
scaled(host::KernelProfile prof, double f)
{
    prof.flops *= f;
    prof.bytesRead *= f;
    prof.bytesWritten *= f;
    prof.callOverheads *= f;
    return prof;
}

/** OpCall templates shared by both execution modes. */
struct StapCalls
{
    OpCall reshape; //!< per-channel corner turn     (RESHP, LOOP nChan)
    LoopSpec reshapeLoop;
    OpCall fft;     //!< per-channel doppler FFT     (FFT, chained)
    OpCall dot;     //!< the 4-deep inner-product nest (DOT, LOOP 4D)
    LoopSpec dotLoop;
    OpCall axpy;    //!< final scaling                (AXPY)
};

StapCalls
buildCalls(const StapParams &p, Addr cube, Addr mid, Addr doppler,
           Addr weights, Addr snap, Addr prods, Addr out)
{
    const unsigned l = p.dofLen();
    const std::int64_t chan_bytes =
        static_cast<std::int64_t>(p.nDop) * p.nRange() * 8;
    StapCalls c;

    // Corner turn: per channel, transpose [pulse][range] ->
    // [range][pulse] (the fftwf rank-0 guru copy of Listing 1).
    c.reshape.kind = AccelKind::RESHP;
    c.reshape.m = p.nDop;
    c.reshape.n = p.nRange();
    c.reshape.complexData = true;
    c.reshape.in0 = {cube, {chan_bytes, 0, 0, 0}};
    c.reshape.out = {mid, {chan_bytes, 0, 0, 0}};
    c.reshapeLoop.dims = {p.nChan, 1, 1, 1};

    // Doppler FFT: nRange transforms of length nDop per channel,
    // chained onto the corner turn's output.
    c.fft.kind = AccelKind::FFT;
    c.fft.n = p.nDop;
    c.fft.m = p.nRange();
    c.fft.complexData = true;
    c.fft.fftDir = -1;
    c.fft.in0 = {mid, {chan_bytes, 0, 0, 0}};
    c.fft.out = {doppler, {chan_bytes, 0, 0, 0}};

    // Inner products: loop dims (dop, block, sv, cell).
    const std::int64_t lb = static_cast<std::int64_t>(l) * 8;
    const std::int64_t w_sv = lb;
    const std::int64_t w_block =
        static_cast<std::int64_t>(p.nSteering) * w_sv;
    const std::int64_t w_dop =
        static_cast<std::int64_t>(p.nBlocks) * w_block;
    const std::int64_t s_cell = lb;
    const std::int64_t s_block =
        static_cast<std::int64_t>(p.tbs) * s_cell;
    const std::int64_t s_dop =
        static_cast<std::int64_t>(p.nBlocks) * s_block;
    const std::int64_t o_cell = 8;
    const std::int64_t o_sv = static_cast<std::int64_t>(p.tbs) * o_cell;
    const std::int64_t o_block =
        static_cast<std::int64_t>(p.nSteering) * o_sv;
    const std::int64_t o_dop =
        static_cast<std::int64_t>(p.nBlocks) * o_block;

    c.dot.kind = AccelKind::DOT;
    c.dot.n = l;
    c.dot.complexData = true;
    c.dot.conjugate = true;
    c.dot.in0 = {weights, {w_dop, w_block, w_sv, 0}};
    c.dot.in1 = {snap, {s_dop, s_block, 0, s_cell}};
    c.dot.out = {prods, {o_dop, o_block, o_sv, o_cell}};
    c.dotLoop.dims = {p.nDop, p.nBlocks, p.nSteering, p.tbs};

    // Output scaling: out += alpha * prods over the flattened cube.
    c.axpy.kind = AccelKind::AXPY;
    c.axpy.n = p.dotCalls();
    c.axpy.complexData = true;
    c.axpy.alpha = 1.0f / static_cast<float>(p.tbs);
    c.axpy.beta = 0.0f;
    c.axpy.in0 = {prods, {0, 0, 0, 0}};
    c.axpy.out = {out, {0, 0, 0, 0}};

    return c;
}

} // namespace

StapResult
runStapHost(const StapParams &p)
{
    StapResult res;
    const hwmodel::MachineProfile &machine = hwmodel::activeProfile();
    host::CpuModel cpu(machine.cpu);
    const unsigned l = p.dofLen();

    // --- functional pipeline through MiniMKL (the legacy code path) ---
    std::vector<cfloat> cube = generateCube(p);
    std::vector<cfloat> mid(cube.size());
    std::vector<cfloat> doppler(cube.size());
    for (unsigned ch = 0; ch < p.nChan; ++ch) {
        dispatch::ops::comatcopy(
                       mkl::Order::RowMajor, mkl::Transpose::Trans,
                       p.nDop, p.nRange(), {1.0f, 0.0f},
                       cube.data() +
                           static_cast<std::size_t>(ch) * p.nDop *
                               p.nRange(),
                       p.nRange(),
                       mid.data() + static_cast<std::size_t>(ch) *
                                        p.nDop * p.nRange(),
                       p.nDop);
    }
    mkl::FftPlan::dft1dBatched(p.nDop,
                               static_cast<std::int64_t>(p.nChan) *
                                   p.nRange(),
                               p.nDop, mkl::FftDirection::Forward)
        .execute(mid.data(), doppler.data());

    std::vector<cfloat> snap(p.dotCalls() / p.nSteering * l);
    buildSnapshots(p, doppler.data(), snap.data(), 0, p.nDop);
    std::vector<cfloat> weights(static_cast<std::size_t>(p.nDop) *
                                p.nBlocks * p.nSteering * l);
    std::uint64_t blas3_calls =
        computeWeights(p, snap.data(), weights.data(), 0, p.nDop);

    std::vector<cfloat> prods(p.dotCalls());
    for (unsigned dop = 0; dop < p.nDop; ++dop)
        for (unsigned b = 0; b < p.nBlocks; ++b)
            for (unsigned s = 0; s < p.nSteering; ++s)
                for (unsigned c = 0; c < p.tbs; ++c) {
                    const cfloat *w =
                        weights.data() +
                        ((static_cast<std::size_t>(dop) * p.nBlocks +
                          b) *
                             p.nSteering +
                         s) *
                            l;
                    const cfloat *x =
                        snap.data() +
                        ((static_cast<std::size_t>(dop) * p.nBlocks +
                          b) *
                             p.tbs +
                         c) *
                            l;
                    prods[((static_cast<std::size_t>(dop) * p.nBlocks +
                            b) *
                               p.nSteering +
                           s) *
                              p.tbs +
                          c] = dispatch::ops::cdotc(l, w, 1, x, 1);
                }

    res.prods.assign(prods.size(), cfloat{});
    dispatch::ops::caxpy(static_cast<std::int64_t>(prods.size()),
                         {1.0f / static_cast<float>(p.tbs), 0.0f},
                         prods.data(), 1, res.prods.data(), 1);

    // --- cost model: every stage runs on the host --------------------
    StapCalls calls = buildCalls(p, 0, 0, 0, 0, 0, 0, 0);

    auto charge = [&](const host::KernelProfile &prof,
                      const char *label) {
        Cost c = cpu.run(prof);
        res.host += c;
        res.ledger.post("host", c, label);
        res.ledger.attribute("host", c.joules);
        res.ledger.addFlops(prof.flops);
    };
    auto host_stage = [&](const OpCall &call, const LoopSpec &loop,
                          double per_call_overhead, const char *label) {
        // Priced against the active machine profile; identical to the
        // pre-registry eval::hostProfile(HaswellMkl) on the default.
        host::KernelProfile prof =
            dispatch::hostKernelProfile(machine, call, loop);
        prof.callOverheads +=
            per_call_overhead * static_cast<double>(loop.iterations());
        charge(prof, label);
    };
    host_stage(calls.reshape, calls.reshapeLoop, 0.0, "reshape");
    host_stage(calls.fft, calls.reshapeLoop, 0.0, "fft"); // one per chan
    // 16M separate cdotc_sub library calls each pay dispatch cost.
    host_stage(calls.dot, calls.dotLoop, 40e-9, "dot");
    host_stage(calls.axpy, {}, 0.0, "axpy");
    charge(weightStageProfile(p), "cherk+ctrsm");
    charge(marshalProfile(p), "marshal");

    res.libraryCalls = 2 + 2 + blas3_calls + p.dotCalls() + 1;
    res.descriptors = 0;
    return res;
}

StapResult
runStapMealib(const StapParams &p, runtime::MealibRuntime &rt,
              bool exclusive)
{
    StapResult res;
    const unsigned l = p.dofLen();
    const std::size_t cube_elems =
        static_cast<std::size_t>(p.nChan) * p.nDop * p.nRange();

    if (exclusive)
        rt.resetAccounting();

    // Data allocation through the memory-management runtime (the s2s
    // compiler rewrote malloc into mealib_mem_alloc).
    auto *cube = static_cast<cfloat *>(rt.memAlloc(cube_elems * 8));
    auto *mid = static_cast<cfloat *>(rt.memAlloc(cube_elems * 8));
    auto *doppler = static_cast<cfloat *>(rt.memAlloc(cube_elems * 8));
    auto *snap = static_cast<cfloat *>(
        rt.memAlloc(p.dotCalls() / p.nSteering * l * 8));
    auto *weights = static_cast<cfloat *>(
        rt.memAlloc(static_cast<std::size_t>(p.nDop) * p.nBlocks *
                    p.nSteering * l * 8));
    auto *prods = static_cast<cfloat *>(rt.memAlloc(p.dotCalls() * 8));
    auto *out = static_cast<cfloat *>(rt.memAlloc(p.dotCalls() * 8));

    std::vector<cfloat> cube_data = generateCube(p);
    std::copy(cube_data.begin(), cube_data.end(), cube);
    std::fill(out, out + p.dotCalls(), cfloat{});
    rt.noteHostWrite(cube, cube_elems * 8);
    rt.noteHostWrite(out, p.dotCalls() * 8);

    StapCalls calls = buildCalls(
        p, rt.physOf(cube), rt.physOf(mid), rt.physOf(doppler),
        rt.physOf(weights), rt.physOf(snap), rt.physOf(prods),
        rt.physOf(out));

    // Descriptor 1: per-channel corner turn chained into the doppler
    // FFT (the two fftwf_plan_guru_dft pairs of Listing 1).
    DescriptorProgram d1;
    d1.addLoop(calls.reshapeLoop, 3);
    d1.addComp(calls.reshape);
    OpCall fft = calls.fft;
    d1.addComp(fft);
    d1.addPassEnd();
    auto h1 = rt.accPlan(d1);
    rt.accExecute(h1);
    rt.accDestroy(h1);

    // Host stages: snapshots, covariance, solves, weight repacking.
    buildSnapshots(p, doppler, snap, 0, p.nDop);
    std::uint64_t blas3_calls =
        computeWeights(p, snap, weights, 0, p.nDop);
    rt.noteHostWrite(snap, p.dotCalls() / p.nSteering * l * 8);
    rt.noteHostWrite(weights, static_cast<std::size_t>(p.nDop) *
                                  p.nBlocks * p.nSteering * l * 8);
    host::CpuModel cpu(hwmodel::activeProfile().cpu);
    rt.runOnHost(weightStageProfile(p));
    rt.runOnHost(marshalProfile(p));

    // Descriptor 2: the 16M cdotc_sub calls as ONE 4-D LOOP descriptor.
    DescriptorProgram d2;
    d2.addLoop(calls.dotLoop, 2);
    d2.addComp(calls.dot);
    d2.addPassEnd();
    auto h2 = rt.accPlan(d2);
    rt.accExecute(h2);
    rt.accDestroy(h2);

    // Descriptor 3: the output-scaling saxpy.
    DescriptorProgram d3;
    d3.addComp(calls.axpy);
    d3.addPassEnd();
    auto h3 = rt.accPlan(d3);
    rt.accExecute(h3);
    rt.accDestroy(h3);

    res.prods.assign(out, out + p.dotCalls());

    if (exclusive) {
        const runtime::RuntimeAccounting &acct = rt.accounting();
        res.host = acct.host;
        res.accel = acct.accel;
        res.invocation = acct.invocation;
        res.timeByAccel = acct.timeByAccel;
        res.energyByAccel = acct.energyByAccel;
        // The host idles (but still burns package power) while the
        // accelerators own the DRAM.
        Cost idle =
            cpu.idleCost(res.accel.seconds + res.invocation.seconds);
        res.host.joules += idle.joules;
        res.criticalPathSeconds = acct.makespanSeconds;
        // The runtime's ledger already mirrors the accounting above;
        // add the package-idle charge so ledger.total() == total()
        // stays exact.
        res.ledger = rt.ledger();
        res.ledger.post("host", {0.0, idle.joules}, "package_idle");
        res.ledger.attribute("host", idle.joules);
    }

    res.libraryCalls = 2 + 2 + blas3_calls + p.dotCalls() + 1;
    res.descriptors = 3;

    for (void *ptr : {static_cast<void *>(cube), static_cast<void *>(mid),
                      static_cast<void *>(doppler),
                      static_cast<void *>(snap),
                      static_cast<void *>(weights),
                      static_cast<void *>(prods),
                      static_cast<void *>(out)})
        rt.memFree(ptr);
    return res;
}

StapResult
runStapMealibAsync(const StapParams &p, runtime::MealibRuntime &rt,
                   bool exclusive)
{
    StapResult res;
    const unsigned l = p.dofLen();
    const std::size_t cube_elems =
        static_cast<std::size_t>(p.nChan) * p.nDop * p.nRange();
    // One doppler slice per stack; every slice's working set lives on
    // its own Local Memory Stack so the submitted descriptors pay no
    // remote-link penalty.
    const unsigned slices = std::min(rt.numStacks(), p.nDop);

    if (exclusive)
        rt.resetAccounting();

    // The datacube and its doppler spectrum stay on stack 0: the corner
    // turn + FFT descriptor is a pipeline head every slice depends on.
    auto *cube = static_cast<cfloat *>(rt.memAlloc(cube_elems * 8));
    auto *mid = static_cast<cfloat *>(rt.memAlloc(cube_elems * 8));
    auto *doppler = static_cast<cfloat *>(rt.memAlloc(cube_elems * 8));

    std::vector<cfloat> cube_data = generateCube(p);
    std::copy(cube_data.begin(), cube_data.end(), cube);
    rt.noteHostWrite(cube, cube_elems * 8);

    StapCalls calls = buildCalls(p, rt.physOf(cube), rt.physOf(mid),
                                 rt.physOf(doppler), 0, 0, 0, 0);

    // Descriptor 1: corner turn chained into the doppler FFT.
    DescriptorProgram d1;
    d1.addLoop(calls.reshapeLoop, 3);
    d1.addComp(calls.reshape);
    d1.addComp(calls.fft);
    d1.addPassEnd();
    auto h1 = rt.accPlan(d1);
    rt.accExecute(h1); // blocking: the host marshals from `doppler`
    rt.accDestroy(h1);

    // Slice boundaries: near-equal contiguous doppler ranges.
    std::vector<unsigned> lo(slices + 1, 0);
    for (unsigned s = 0; s < slices; ++s)
        lo[s + 1] = lo[s] + p.nDop / slices +
                    (s < p.nDop % slices ? 1 : 0);

    struct Slice
    {
        cfloat *snap, *weights, *prods, *out;
        runtime::AccPlanHandle plan;
    };
    std::vector<Slice> sl(slices);
    std::uint64_t blas3_calls = 0;

    for (unsigned s = 0; s < slices; ++s) {
        const unsigned dops = lo[s + 1] - lo[s];
        const std::size_t rows =
            static_cast<std::size_t>(dops) * p.nBlocks;
        const std::size_t dot_calls = rows * p.nSteering * p.tbs;
        sl[s].snap = static_cast<cfloat *>(
            rt.memAllocOn(s, rows * p.tbs * l * 8));
        sl[s].weights = static_cast<cfloat *>(
            rt.memAllocOn(s, rows * p.nSteering * l * 8));
        sl[s].prods =
            static_cast<cfloat *>(rt.memAllocOn(s, dot_calls * 8));
        sl[s].out =
            static_cast<cfloat *>(rt.memAllocOn(s, dot_calls * 8));

        // Host: marshal + adaptive weights for THIS slice; slices
        // already submitted keep executing near memory meanwhile.
        buildSnapshots(p, doppler, sl[s].snap, lo[s], lo[s + 1]);
        blas3_calls += computeWeights(p, sl[s].snap, sl[s].weights,
                                      lo[s], lo[s + 1]);
        std::fill(sl[s].out, sl[s].out + dot_calls, cfloat{});
        rt.noteHostWrite(sl[s].snap, rows * p.tbs * l * 8);
        rt.noteHostWrite(sl[s].weights, rows * p.nSteering * l * 8);
        rt.noteHostWrite(sl[s].out, dot_calls * 8);
        const double frac =
            static_cast<double>(dops) / static_cast<double>(p.nDop);
        rt.runOnHost(scaled(weightStageProfile(p), frac));
        rt.runOnHost(scaled(marshalProfile(p), frac));

        // This slice's inner products + scaling as one descriptor,
        // submitted to the slice's home stack.
        StapCalls sc = buildCalls(
            p, 0, 0, 0, rt.physOf(sl[s].weights), rt.physOf(sl[s].snap),
            rt.physOf(sl[s].prods), rt.physOf(sl[s].out));
        sc.dotLoop.dims = {dops, p.nBlocks, p.nSteering, p.tbs};
        sc.axpy.n = dot_calls;
        DescriptorProgram d;
        d.addLoop(sc.dotLoop, 2);
        d.addComp(sc.dot);
        d.addPassEnd();
        d.addComp(sc.axpy);
        d.addPassEnd();
        sl[s].plan = rt.accPlan(d);
        rt.accSubmitOn(sl[s].plan, s);
    }
    rt.waitAll();

    res.prods.resize(p.dotCalls());
    for (unsigned s = 0; s < slices; ++s) {
        const std::size_t off = static_cast<std::size_t>(lo[s]) *
                                p.nBlocks * p.nSteering * p.tbs;
        const std::size_t count =
            static_cast<std::size_t>(lo[s + 1] - lo[s]) * p.nBlocks *
            p.nSteering * p.tbs;
        std::copy(sl[s].out, sl[s].out + count,
                  res.prods.begin() + static_cast<std::ptrdiff_t>(off));
        rt.accDestroy(sl[s].plan);
    }

    if (exclusive) {
        const runtime::RuntimeAccounting &acct = rt.accounting();
        res.host = acct.host;
        res.accel = acct.accel;
        res.invocation = acct.invocation;
        res.timeByAccel = acct.timeByAccel;
        res.energyByAccel = acct.energyByAccel;
        res.criticalPathSeconds = acct.makespanSeconds;
        // The host burns package power only where the overlap-aware
        // timeline leaves it idle.
        host::CpuModel cpu(hwmodel::activeProfile().cpu);
        const double idle_s =
            std::max(0.0, acct.makespanSeconds - acct.hostBusySeconds);
        const double idle_j = cpu.idleCost(idle_s).joules;
        res.host.joules += idle_j;
        res.ledger = rt.ledger();
        res.ledger.post("host", {0.0, idle_j}, "package_idle");
        res.ledger.attribute("host", idle_j);
    }

    res.libraryCalls = 2 + 2 + blas3_calls + p.dotCalls() + 1;
    res.descriptors = 1 + slices;

    for (unsigned s = 0; s < slices; ++s)
        for (void *ptr : {static_cast<void *>(sl[s].snap),
                          static_cast<void *>(sl[s].weights),
                          static_cast<void *>(sl[s].prods),
                          static_cast<void *>(sl[s].out)})
            rt.memFree(ptr);
    for (void *ptr : {static_cast<void *>(cube),
                      static_cast<void *>(mid),
                      static_cast<void *>(doppler)})
        rt.memFree(ptr);
    return res;
}

} // namespace mealib::apps
