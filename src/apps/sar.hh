/**
 * @file
 * SAR (Synthetic Aperture Radar) image-formation kernel, the paper's
 * accelerator-chaining workload (Sec. 5.4, Fig. 12a, reference [27]):
 * per-row range interpolation (RESMP) feeding an azimuth FFT (FFT).
 *
 * Two execution strategies are compared:
 *  - hardware chaining: RESMP and FFT in one PASS of one descriptor —
 *    the intermediate never round-trips through DRAM and only one
 *    invocation (flush + descriptor + START) is paid;
 *  - software chaining: two descriptors executed back to back, paying
 *    two invocations and a full DRAM round trip of the intermediate.
 *
 * The same module provides the Fig. 12b loop workload: a batch of FFTs
 * issued either as one LOOP descriptor (hardware loop) or as N separate
 * descriptors (software loop).
 */

#ifndef MEALIB_APPS_SAR_HH
#define MEALIB_APPS_SAR_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "minimkl/types.hh"
#include "runtime/runtime.hh"

namespace mealib::apps {

/** Result of one SAR-chain run. */
struct SarResult
{
    std::vector<mkl::cfloat> image; //!< azimuth spectrum, row-major
    Cost total;                     //!< accelerator + invocation cost
    std::uint64_t descriptors = 0;
    /** Overlap-aware wall clock of this run's descriptors (timeline
     * span between entry and the last DONE). The software-chained pair
     * is submitted asynchronously; the RESMP->FFT RAW hazard on the
     * intermediate serializes it back to the blocking schedule. */
    double criticalPathSeconds = 0.0;
};

/**
 * Process an @p n x @p n image: each row is sinc-resampled from n/2
 * input samples to n, then FFT'd. @p hardwareChaining selects one
 * chained PASS versus two separate descriptor invocations.
 */
SarResult runSarChain(std::uint64_t n, bool hardwareChaining,
                      runtime::MealibRuntime &rt, std::uint64_t seed = 7);

/** Result of one FFT-loop run (Fig. 12b). */
struct FftLoopResult
{
    Cost total;
    std::uint64_t descriptors = 0;
    /** Overlap-aware wall clock (see SarResult). The software loop
     * submits all N descriptors before waiting; on a multi-stack
     * runtime with disjoint buffers they spread and overlap. */
    double criticalPathSeconds = 0.0;
};

/**
 * Execute @p count FFTs of size @p n x @p n (2D) either through one
 * LOOP descriptor (@p hardwareLoop) or @p count separate descriptors.
 * Cost-model only (functional execution of 128 large FFTs would not
 * change the comparison); buffers still live in the runtime arena.
 */
FftLoopResult runFftLoop(std::uint64_t n, std::uint64_t count,
                         bool hardwareLoop, runtime::MealibRuntime &rt);

} // namespace mealib::apps

#endif // MEALIB_APPS_SAR_HH
