#include "dram/tracegen.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace mealib::dram {

std::string
writeTrace(const Trace &trace)
{
    std::ostringstream os;
    os << "# mealib-trace sampled=" << trace.sampledBytes
       << " total=" << trace.totalBytes << "\n";
    for (const Request &r : trace.requests)
        os << (r.isWrite ? 'W' : 'R') << " " << r.addr << " " << r.bytes
           << "\n";
    return os.str();
}

Trace
readTrace(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    Trace t;
    bool header = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // Header: "# mealib-trace sampled=<n> total=<n>"
            auto s = line.find("sampled=");
            auto tt = line.find("total=");
            fatalIf(s == std::string::npos || tt == std::string::npos,
                    "trace: malformed header '", line, "'");
            t.sampledBytes = std::strtoull(line.c_str() + s + 8,
                                           nullptr, 10);
            t.totalBytes = std::strtoull(line.c_str() + tt + 6, nullptr,
                                         10);
            header = true;
            continue;
        }
        std::istringstream ls(line);
        char op = 0;
        Addr addr = 0;
        std::uint32_t bytes = 0;
        ls >> op >> addr >> bytes;
        fatalIf(ls.fail() || (op != 'R' && op != 'W') || bytes == 0,
                "trace: malformed request line '", line, "'");
        t.requests.push_back({addr, bytes, op == 'W'});
    }
    fatalIf(!header, "trace: missing header line");
    fatalIf(t.requests.empty(), "trace: no requests");
    return t;
}

TraceBuilder::TraceBuilder(const DramParams &params,
                           std::uint64_t maxSampledBytes)
    : params_(params), cap_(maxSampledBytes)
{
    fatalIf(params_.timing.burstBytes == 0, "device burst size is zero");
    fatalIf(cap_ < params_.timing.burstBytes,
            "sampling cap smaller than one burst");
}

double
TraceBuilder::sampleFraction(std::uint64_t total_bytes) const
{
    if (total_bytes <= cap_)
        return 1.0;
    return static_cast<double>(cap_) / static_cast<double>(total_bytes);
}

void
TraceBuilder::chunk(Stream &s, Addr base, std::uint64_t bytes, bool write)
{
    const std::uint64_t burst = params_.timing.burstBytes;
    Addr a = base;
    std::uint64_t left = bytes;
    while (left > 0) {
        // split at burst-aligned boundaries so each request maps to one
        // row-buffer access
        std::uint64_t in_burst = burst - (a % burst);
        std::uint32_t take =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(left,
                                                               in_burst));
        s.bursts.push_back({a, take, write});
        s.sampledBytes += take;
        a += take;
        left -= take;
    }
}

void
TraceBuilder::addLinear(Addr base, std::uint64_t bytes, bool write)
{
    if (bytes == 0)
        return;
    totalBytes_ += bytes;
    Stream s;
    s.totalBytes = bytes;
    // Materialize a prefix window; a linear stream's steady state is
    // position-independent so a prefix is a faithful sample.
    std::uint64_t window = std::min(bytes, cap_);
    // One burst per aligned boundary crossed, plus unaligned edges.
    s.bursts.reserve(static_cast<std::size_t>(
        window / params_.timing.burstBytes + 2));
    chunk(s, base, window, write);
    streams_.push_back(std::move(s));
}

void
TraceBuilder::addStrided(Addr base, std::uint64_t chunkBytes,
                         std::uint64_t strideBytes, std::uint64_t count,
                         bool write)
{
    if (count == 0 || chunkBytes == 0)
        return;
    fatalIf(strideBytes < chunkBytes,
            "stride must be at least the chunk size");
    totalBytes_ += chunkBytes * count;
    Stream s;
    s.totalBytes = chunkBytes * count;
    std::uint64_t max_chunks =
        std::max<std::uint64_t>(1, cap_ / chunkBytes);
    std::uint64_t n = std::min(count, max_chunks);
    s.bursts.reserve(static_cast<std::size_t>(
        n * (chunkBytes / params_.timing.burstBytes + 1)));
    for (std::uint64_t i = 0; i < n; ++i)
        chunk(s, base + i * strideBytes, chunkBytes, write);
    streams_.push_back(std::move(s));
}

void
TraceBuilder::addGather(Addr base, std::uint64_t regionBytes,
                        std::uint64_t count, std::uint32_t elemBytes,
                        bool write, Rng &rng)
{
    if (count == 0 || elemBytes == 0)
        return;
    fatalIf(regionBytes < elemBytes, "gather region smaller than element");
    totalBytes_ += static_cast<std::uint64_t>(elemBytes) * count;
    Stream s;
    s.totalBytes = static_cast<std::uint64_t>(elemBytes) * count;
    std::uint64_t max_elems =
        std::max<std::uint64_t>(1, cap_ / elemBytes);
    std::uint64_t n = std::min(count, max_elems);
    s.bursts.reserve(static_cast<std::size_t>(
        n * (elemBytes / params_.timing.burstBytes + 1)));
    const std::uint64_t slots = regionBytes / elemBytes;
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr a = base + rng.below(slots) * elemBytes;
        chunk(s, a, elemBytes, write);
    }
    streams_.push_back(std::move(s));
}

Trace
TraceBuilder::build() const
{
    Trace t;
    t.totalBytes = totalBytes_;

    // Trim every stream to a common sampled fraction so the window's
    // stream mix matches the full operation's mix.
    double frac = 1.0;
    for (const Stream &s : streams_) {
        double f = static_cast<double>(s.sampledBytes) /
                   static_cast<double>(s.totalBytes);
        frac = std::min(frac, f);
    }

    struct Cursor
    {
        const Stream *s;
        std::uint64_t quota; //!< bursts to emit
        std::uint64_t emitted = 0;
    };
    std::vector<Cursor> cur;
    for (const Stream &s : streams_) {
        // Trim this stream's materialized prefix so its sampled fraction
        // equals the common fraction `frac` (streams whose fraction is
        // already `frac` keep everything).
        double f_s = static_cast<double>(s.sampledBytes) /
                     static_cast<double>(s.totalBytes);
        std::uint64_t quota = static_cast<std::uint64_t>(
            static_cast<double>(s.bursts.size()) * (frac / f_s) + 0.5);
        quota = std::min<std::uint64_t>(
            std::max<std::uint64_t>(quota, 1), s.bursts.size());
        cur.push_back({&s, quota});
    }

    // Smooth weighted round-robin: at each step emit from the stream with
    // the largest deficit between its proportional share and what it has
    // already emitted. This mirrors a DMA engine arbitrating streams by
    // bandwidth share.
    std::uint64_t total_quota = 0;
    for (const Cursor &c : cur)
        total_quota += c.quota;

    t.requests.reserve(total_quota);
    for (std::uint64_t step = 1; step <= total_quota; ++step) {
        double best_deficit = -1.0;
        Cursor *best = nullptr;
        for (Cursor &c : cur) {
            if (c.emitted >= c.quota)
                continue;
            double share = static_cast<double>(c.quota) /
                           static_cast<double>(total_quota);
            double deficit = share * static_cast<double>(step) -
                             static_cast<double>(c.emitted);
            if (deficit > best_deficit) {
                best_deficit = deficit;
                best = &c;
            }
        }
        panicIf(best == nullptr, "round-robin ran out of streams early");
        const Request &r = best->s->bursts[best->emitted];
        t.requests.push_back(r);
        t.sampledBytes += r.bytes;
        best->emitted++;
    }
    return t;
}

} // namespace mealib::dram
