/**
 * @file
 * Trace construction for the DRAM simulator.
 *
 * Accelerators are streaming engines: they read/write a handful of
 * concurrent address streams (plus gathers for sparse operands). The
 * TraceBuilder describes an operation as a set of such streams, samples a
 * bounded window of the full traffic, and interleaves the streams with
 * smooth weighted round-robin — the arbitration a multi-stream DMA engine
 * performs in hardware.
 */

#ifndef MEALIB_DRAM_TRACEGEN_HH
#define MEALIB_DRAM_TRACEGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"
#include "dram/params.hh"
#include "dram/request.hh"

namespace mealib::dram {

/**
 * Serialize a trace to the simulator's text exchange format (one
 * request per line: `R|W <addr> <bytes>`, with a `# sampled/total`
 * header). The paper's methodology (Fig. 8) passes accelerator traces
 * into the DRAM simulator as files; this is that interface.
 */
std::string writeTrace(const Trace &trace);

/** Parse a trace written by writeTrace(); fatal() on malformed input. */
Trace readTrace(const std::string &text);

/** Builds sampled, interleaved request traces from stream descriptions. */
class TraceBuilder
{
  public:
    /**
     * @param params device whose burst size chunks the streams
     * @param maxSampledBytes cap on the simulated window (the rest of the
     *        traffic is extrapolated from the window's steady state)
     */
    explicit TraceBuilder(const DramParams &params,
                          std::uint64_t maxSampledBytes = 2_MiB);

    /** Contiguous stream of @p bytes starting at @p base. */
    void addLinear(Addr base, std::uint64_t bytes, bool write);

    /**
     * Strided stream: @p count chunks of @p chunkBytes, consecutive chunk
     * starts separated by @p strideBytes (>= chunkBytes).
     */
    void addStrided(Addr base, std::uint64_t chunkBytes,
                    std::uint64_t strideBytes, std::uint64_t count,
                    bool write);

    /**
     * Random gather/scatter: @p count accesses of @p elemBytes uniformly
     * distributed in [base, base+regionBytes), drawn from @p rng.
     */
    void addGather(Addr base, std::uint64_t regionBytes,
                   std::uint64_t count, std::uint32_t elemBytes, bool write,
                   Rng &rng);

    /**
     * Finalize. Streams are scaled so the window covers at most the
     * configured cap, chunked into device bursts, and interleaved
     * proportionally to each stream's share of total traffic.
     */
    Trace build() const;

  private:
    struct Stream
    {
        std::vector<Request> bursts;  //!< sampled portion, in burst units
        std::uint64_t totalBytes = 0; //!< full (unsampled) traffic
        std::uint64_t sampledBytes = 0;
    };

    /** Fraction of each stream to materialize given the window cap. */
    double sampleFraction(std::uint64_t total_bytes) const;

    /** Split [base, base+bytes) into burst-sized requests. */
    void chunk(Stream &s, Addr base, std::uint64_t bytes, bool write);

    DramParams params_;
    std::uint64_t cap_;
    std::vector<Stream> streams_;
    std::uint64_t totalBytes_ = 0;
};

} // namespace mealib::dram

#endif // MEALIB_DRAM_TRACEGEN_HH
