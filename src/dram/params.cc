#include "dram/params.hh"

namespace mealib::dram {

DramParams
hmcStack()
{
    DramParams p;
    p.name = "hmc-3d-stack";

    // 32 vaults x ~16 GB/s per vault = 512 GB/s aggregate internal
    // bandwidth (the paper's Table 3 quotes 510 GB/s). Per-vault TSV bus
    // moves a 32 B burst in 2 cycles at 1.0 GHz.
    p.timing.tCK = 1.0 / 1.0_GHz;
    p.timing.tRCD = 14;
    p.timing.tCAS = 14;
    p.timing.tRP = 14;
    p.timing.tRAS = 34;
    p.timing.tWR = 15;
    p.timing.tBURST = 2;
    p.timing.burstBytes = 32;
    p.timing.tREFI = 3900; // 3.9 us at 1 GHz (fine-grained 3D refresh)
    p.timing.tRFC = 60;

    // CACTI-3DD-style estimates for a 32 nm 3D part: small rows make
    // activates cheap; TSVs are far cheaper than off-chip I/O.
    p.energy.activateJ = 0.7_nJ;
    p.energy.readJPerByte = 4.0_pJ;
    p.energy.writeJPerByte = 4.4_pJ;
    p.energy.tsvJPerByte = 0.8_pJ;
    p.energy.backgroundWPerVault = 0.055;
    p.energy.refreshJPerVault = 8.0_nJ;

    p.org.numVaults = 32;
    p.org.banksPerVault = 8;
    p.org.rowBytes = 256;
    p.org.interleaveBytes = 32;
    p.org.capacityBytes = 4_GiB;
    p.org.linkBandwidth = 120.0_GBps; // 4 half-width HMC links

    return p;
}

DramParams
ddr3(unsigned channels)
{
    DramParams p;
    p.name = "ddr3-1600-x" + std::to_string(channels);

    // DDR3-1600: 800 MHz bus clock, 64 B cache-line burst (BL8 on a
    // 64-bit channel) occupies 4 bus cycles.
    p.timing.tCK = 1.0 / 0.8_GHz;
    p.timing.tRCD = 11;
    p.timing.tCAS = 11;
    p.timing.tRP = 11;
    p.timing.tRAS = 28;
    p.timing.tWR = 12;
    p.timing.tBURST = 4;
    p.timing.burstBytes = 64;
    p.timing.tREFI = 6240; // 7.8 us at 800 MHz
    p.timing.tRFC = 280;   // 350 ns

    // Off-chip I/O dominates: ~15 pJ/byte on the channel versus ~1 pJ/byte
    // over TSVs; 8 KiB rows make activates expensive.
    p.energy.activateJ = 15.0_nJ;
    p.energy.readJPerByte = 6.0_pJ;
    p.energy.writeJPerByte = 6.6_pJ;
    p.energy.tsvJPerByte = 15.0_pJ;
    p.energy.backgroundWPerVault = 0.9;
    p.energy.refreshJPerVault = 120.0_nJ;

    p.org.numVaults = channels;
    p.org.banksPerVault = 8;
    p.org.rowBytes = 8_KiB;
    p.org.interleaveBytes = 64;
    p.org.capacityBytes = static_cast<std::uint64_t>(channels) * 4_GiB;
    p.org.linkBandwidth = p.peakInternalBandwidth();

    return p;
}

} // namespace mealib::dram
