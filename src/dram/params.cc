#include "dram/params.hh"

#include "hwmodel/profile.hh"

namespace mealib::dram {

// The parameter values live in the hardware-model registry
// (src/hwmodel/presets.cc) so every Table 3/CACTI constant is defined
// exactly once; these factories remain as the module-local spelling.

DramParams
hmcStack()
{
    return hwmodel::hmcStackParams();
}

DramParams
ddr3(unsigned channels)
{
    return hwmodel::ddr3Params(channels);
}

} // namespace mealib::dram
