/**
 * @file
 * Memory request records exchanged between trace generators and the DRAM
 * simulator.
 */

#ifndef MEALIB_DRAM_REQUEST_HH
#define MEALIB_DRAM_REQUEST_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace mealib::dram {

/** A single DRAM access. Trace generators chunk accesses into bursts. */
struct Request
{
    Addr addr = 0;             //!< byte address within the stack
    std::uint32_t bytes = 0;   //!< transfer size (<= one burst)
    bool isWrite = false;      //!< write (true) or read (false)
};

/** A request stream plus the footprint it represents.
 *
 * Large operations are sampled: @c requests covers @c sampledBytes of
 * traffic out of @c totalBytes; the simulator extrapolates the remainder
 * from steady-state behaviour of the sampled window.
 */
struct Trace
{
    std::vector<Request> requests;
    std::uint64_t sampledBytes = 0; //!< traffic covered by @c requests
    std::uint64_t totalBytes = 0;   //!< traffic of the full operation

    /** Extrapolation factor from the sampled window to the full op. */
    double
    scale() const
    {
        if (sampledBytes == 0)
            return 1.0;
        return static_cast<double>(totalBytes) /
               static_cast<double>(sampledBytes);
    }
};

} // namespace mealib::dram

#endif // MEALIB_DRAM_REQUEST_HH
