/**
 * @file
 * Timing, energy and organization parameters of the simulated DRAM
 * devices.
 *
 * Two presets are provided: an HMC-like 3D stack (the MEALib substrate,
 * 510 GB/s aggregate internal bandwidth as in Table 3 of the paper) and a
 * conventional DDR3-1600 channel group used for the host, PSAS and MSAS
 * baselines. Parameter values follow CACTI-3DD-style estimates for a
 * 32 nm-generation part; they are inputs to the model, not measurements.
 */

#ifndef MEALIB_DRAM_PARAMS_HH
#define MEALIB_DRAM_PARAMS_HH

#include <cstdint>
#include <string>

#include "common/units.hh"
#include "hwmodel/constants.hh"

namespace mealib::dram {

/** Per-vault (or per-channel) DRAM timing, in device clock cycles. */
struct TimingParams
{
    double tCK = 0.0;        //!< clock period in seconds
    Cycles tRCD = 0;         //!< activate to column command
    Cycles tCAS = 0;         //!< column command to first data
    Cycles tRP = 0;          //!< precharge latency
    Cycles tRAS = 0;         //!< minimum row-open time
    Cycles tWR = 0;          //!< write recovery
    Cycles tBURST = 0;       //!< data bus occupancy per burst
    std::uint64_t burstBytes = 0; //!< bytes transferred per burst
    Cycles tREFI = 0;        //!< refresh interval (0 = refresh ignored)
    Cycles tRFC = 0;         //!< refresh cycle time (vault blocked)
};

/** Energy model parameters (CACTI-3DD-style). */
struct EnergyParams
{
    double activateJ = 0.0;     //!< energy per row activation
    double readJPerByte = 0.0;  //!< array read energy per byte
    double writeJPerByte = 0.0; //!< array write energy per byte
    double tsvJPerByte = 0.0;   //!< TSV (or channel I/O) energy per byte
    double backgroundWPerVault = 0.0; //!< standby power per vault
    double refreshJPerVault = 0.0;    //!< energy of one all-bank refresh
};

/** Organization of one stack (or channel group). */
struct OrgParams
{
    unsigned numVaults = 0;       //!< vaults (3D) or channels (2D)
    unsigned banksPerVault = 0;   //!< banks per vault
    std::uint64_t rowBytes = 0;   //!< row-buffer size per bank
    std::uint64_t interleaveBytes = 0; //!< vault-interleaving granularity
    std::uint64_t capacityBytes = 0;   //!< total capacity
    double linkBandwidth = 0.0;   //!< external (host-visible) bandwidth, B/s
};

/** Complete description of one DRAM device. */
struct DramParams
{
    std::string name;
    TimingParams timing;
    EnergyParams energy;
    OrgParams org;

    /** Peak internal data bandwidth across all vaults, bytes/second. */
    double
    peakInternalBandwidth() const
    {
        double per_vault = static_cast<double>(timing.burstBytes) /
                           (static_cast<double>(timing.tBURST) * timing.tCK);
        return per_vault * org.numVaults;
    }
};

/**
 * HMC-like 3D stack: 32 vaults, 510 GB/s aggregate internal bandwidth
 * (Table 3), 8 banks per vault, 256 B row buffers, 4 GiB capacity.
 */
DramParams hmcStack();

/**
 * DDR3-1600-like channel group. @p channels scales the configuration:
 * 2 channels = 25.6 GB/s (the Haswell host and PSAS substrate), 8 channels
 * = 102.4 GB/s (the MSAS substrate of Table 3).
 */
DramParams ddr3(unsigned channels);

/**
 * DRAM-logic-layer additions of MEALib (Sec. 5.2): the (de)multiplexers on
 * the vault/link controllers plus the data-reshape unit. Fixed cost
 * constants reported by the paper: 0.25 W and 0.45 mm^2 at 32 nm.
 */
struct LogicLayerExtras
{
    double powerW = hwmodel::kLogicLayerMuxPowerW;
    double areaMm2 = hwmodel::kLogicLayerMuxAreaMm2;
    //! HMC 2011 logic layer area
    double logicLayerAreaMm2 = hwmodel::kLogicLayerAreaMm2;
};

} // namespace mealib::dram

#endif // MEALIB_DRAM_PARAMS_HH
