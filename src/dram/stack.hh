/**
 * @file
 * A full 3D memory stack (or 2D channel group): vaults behind an
 * address-interleaved crossbar, link controllers arbitrating ownership
 * between the host CPU and the memory-side accelerators, and the energy
 * model that turns vault activity into joules.
 */

#ifndef MEALIB_DRAM_STACK_HH
#define MEALIB_DRAM_STACK_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "dram/params.hh"
#include "dram/request.hh"
#include "dram/vault.hh"

namespace mealib::dram {

/** Who currently owns the DRAM arrays (paper Sec. 2.1: never both). */
enum class Owner
{
    None,
    Cpu,
    Accelerator,
};

/** Aggregate result of simulating one trace on a stack. */
struct RunStats
{
    double seconds = 0.0;        //!< completion time of the trace
    double energyJ = 0.0;        //!< DRAM energy (array + TSV + background)
    std::uint64_t bytes = 0;     //!< total traffic
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t activates = 0;
    std::uint64_t refreshes = 0;

    /** Achieved bandwidth in bytes/second. */
    double
    bandwidth() const
    {
        return seconds > 0.0 ? static_cast<double>(bytes) / seconds : 0.0;
    }

    /** Row-buffer hit rate in [0,1]. */
    double
    rowHitRate() const
    {
        std::uint64_t total = rowHits + rowMisses;
        return total ? static_cast<double>(rowHits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    Cost
    cost() const
    {
        return {seconds, energyJ};
    }
};

/**
 * The stack simulator. Simulation is trace-driven: callers build a
 * Trace (possibly a sampled window of a larger operation) and run() it;
 * sampled windows are extrapolated linearly in traffic, which is accurate
 * for the steady-state streaming patterns the accelerators generate.
 */
class Stack
{
  public:
    explicit Stack(const DramParams &params,
                   PagePolicy policy = PagePolicy::Open);

    /** Simulate @p trace to completion from an idle stack. */
    RunStats run(const Trace &trace);

    /**
     * Arbitration at the link controllers. acquire() fails (fatal) if a
     * different owner already holds the stack — the paper's design
     * forbids simultaneous CPU/accelerator operation.
     */
    void acquire(Owner owner);
    void release(Owner owner);
    Owner owner() const { return owner_; }

    const DramParams &params() const { return params_; }

    /** Ideal time lower bound for @p bytes of traffic, seconds. */
    double
    streamTimeLowerBound(std::uint64_t bytes) const
    {
        return static_cast<double>(bytes) /
               params_.peakInternalBandwidth();
    }

    // --- ECC penalty model (fault injection, docs/FAULTS.md) -----------

    /**
     * Latency of one in-line corrected ECC event: the vault re-reads the
     * word and writes the scrubbed line back — a row cycle (tRCD + tCAS
     * + tRP) of stall plus the write-back burst.
     */
    double
    eccCorrectPenaltySeconds() const
    {
        const TimingParams &t = params_.timing;
        return static_cast<double>(t.tRCD + t.tCAS + t.tRP + t.tBURST) *
               t.tCK;
    }

    /**
     * Latency the controller spends before declaring a word
     * uncorrectable: a bounded re-read sequence (the retry happens at
     * the command level, so this only prices the detection).
     */
    double
    eccUncorrectableDetectSeconds() const
    {
        return 4.0 * eccCorrectPenaltySeconds();
    }

  private:
    /** Vault index for a stack-level address. */
    unsigned vaultOf(Addr a) const;

    /** Vault-local address for a stack-level address. */
    Addr localAddr(Addr a) const;

    DramParams params_;
    std::vector<Vault> vaults_;
    Owner owner_ = Owner::None;
};

} // namespace mealib::dram

#endif // MEALIB_DRAM_STACK_HH
