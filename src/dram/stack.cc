#include "dram/stack.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mealib::dram {

Stack::Stack(const DramParams &params, PagePolicy policy)
    : params_(params)
{
    fatalIf(params_.org.numVaults == 0, "stack needs at least one vault");
    fatalIf(params_.org.interleaveBytes == 0,
            "interleave granularity must be nonzero");
    vaults_.reserve(params_.org.numVaults);
    for (unsigned i = 0; i < params_.org.numVaults; ++i)
        vaults_.emplace_back(params_.timing, params_.org, 8, policy);
}

unsigned
Stack::vaultOf(Addr a) const
{
    return static_cast<unsigned>((a / params_.org.interleaveBytes) %
                                 params_.org.numVaults);
}

Addr
Stack::localAddr(Addr a) const
{
    const std::uint64_t ig = params_.org.interleaveBytes;
    const std::uint64_t stripe = a / (ig * params_.org.numVaults);
    return stripe * ig + a % ig;
}

void
Stack::acquire(Owner owner)
{
    fatalIf(owner == Owner::None, "cannot acquire with Owner::None");
    fatalIf(owner_ != Owner::None && owner_ != owner,
            "DRAM stack already owned; CPU and accelerators must not "
            "operate on the DRAM simultaneously");
    owner_ = owner;
}

void
Stack::release(Owner owner)
{
    fatalIf(owner_ != owner, "releasing a stack not held by this owner");
    owner_ = Owner::None;
}

RunStats
Stack::run(const Trace &trace)
{
    // Partition the trace into per-vault queues, preserving order.
    std::vector<std::vector<Request>> queues(vaults_.size());
    std::uint64_t window_bytes = 0;
    for (const Request &r : trace.requests) {
        Request local = r;
        local.addr = localAddr(r.addr);
        queues[vaultOf(r.addr)].push_back(local);
        window_bytes += r.bytes;
    }
    panicIf(trace.sampledBytes != 0 && window_bytes != trace.sampledBytes,
            "trace sampledBytes (", trace.sampledBytes,
            ") disagrees with request payload (", window_bytes, ")");

    VaultStats agg;
    Cycles finish = 0;
    for (std::size_t v = 0; v < vaults_.size(); ++v) {
        vaults_[v].reset();
        VaultStats s = vaults_[v].service(queues[v], 0);
        finish = std::max(finish, s.busyUntil);
        agg += s;
    }

    const double scale = trace.scale();
    double window_seconds =
        static_cast<double>(finish) * params_.timing.tCK;

    RunStats out;
    out.seconds = window_seconds * scale;
    out.bytes = trace.totalBytes ? trace.totalBytes : window_bytes;
    out.rowHits =
        static_cast<std::uint64_t>(static_cast<double>(agg.rowHits) * scale);
    out.rowMisses = static_cast<std::uint64_t>(
        static_cast<double>(agg.rowMisses) * scale);
    out.activates = static_cast<std::uint64_t>(
        static_cast<double>(agg.activates) * scale);
    out.refreshes = static_cast<std::uint64_t>(
        static_cast<double>(agg.refreshes) * scale);

    const EnergyParams &e = params_.energy;
    double dyn = static_cast<double>(agg.activates) * e.activateJ +
                 static_cast<double>(agg.bytesRead) * e.readJPerByte +
                 static_cast<double>(agg.bytesWritten) * e.writeJPerByte +
                 static_cast<double>(window_bytes) * e.tsvJPerByte +
                 static_cast<double>(agg.refreshes) * e.refreshJPerVault;
    double background = e.backgroundWPerVault *
                        static_cast<double>(params_.org.numVaults) *
                        out.seconds;
    out.energyJ = dyn * scale + background;
    return out;
}

} // namespace mealib::dram
