#include "dram/vault.hh"

#include <algorithm>

#include "common/logging.hh"

namespace mealib::dram {

Vault::Vault(const TimingParams &timing, const OrgParams &org,
             unsigned window, PagePolicy policy)
    : timing_(timing), org_(org), window_(window), policy_(policy)
{
    fatalIf(org_.banksPerVault == 0, "vault needs at least one bank");
    fatalIf(org_.rowBytes == 0, "row buffer size must be nonzero");
    fatalIf(window_ == 0, "scheduling window must be >= 1");
    banks_.resize(org_.banksPerVault);
}

void
Vault::reset()
{
    for (auto &b : banks_)
        b = Bank{};
    busFree_ = 0;
}

void
Vault::serviceOne(const Request &req, VaultStats &stats)
{
    panicIf(req.bytes == 0 || req.bytes > timing_.burstBytes,
            "request size ", req.bytes, " exceeds burst size ",
            timing_.burstBytes);

    Bank &bank = banks_[bankOf(req.addr)];
    const std::int64_t row = static_cast<std::int64_t>(rowOf(req.addr));

    Cycles col_ready; // when the column command can issue
    if (bank.openRow == row) {
        stats.rowHits++;
        // Column commands to an open row pipeline at the burst rate
        // (tCCD == tBURST); CAS latency overlaps across commands.
        col_ready = bank.nextCol;
    } else {
        stats.rowMisses++;
        stats.activates++;
        Cycles act = bank.preReady;
        if (bank.openRow >= 0) {
            // honour tRAS before precharging the old row
            Cycles ras_done = bank.activatedAt + timing_.tRAS;
            act = std::max(act, ras_done) + timing_.tRP;
        }
        bank.activatedAt = act;
        col_ready = act + timing_.tRCD;
        bank.openRow = row;
    }

    // Data transfer occupies the shared vault bus after CAS latency.
    Cycles data_start = std::max(col_ready + timing_.tCAS, busFree_);
    Cycles data_end = data_start + timing_.tBURST;
    busFree_ = data_end;

    // Next column command may issue one burst slot after this one; a
    // precharge must additionally wait for the data to drain (plus write
    // recovery for writes).
    bank.nextCol = data_start - timing_.tCAS + timing_.tBURST;
    bank.preReady = std::max(
        bank.preReady, data_end + (req.isWrite ? timing_.tWR : 0));

    if (policy_ == PagePolicy::Closed) {
        // Auto-precharge: the row closes behind the burst; the next
        // access to this bank activates from scratch (after tRAS/tRP).
        bank.preReady = std::max(bank.activatedAt + timing_.tRAS,
                                 bank.preReady) +
                        timing_.tRP;
        bank.openRow = -1;
    }

    if (req.isWrite) {
        stats.writes++;
        stats.bytesWritten += req.bytes;
    } else {
        stats.reads++;
        stats.bytesRead += req.bytes;
    }
    stats.busyUntil = std::max(stats.busyUntil, data_end);
}

VaultStats
Vault::service(const std::vector<Request> &queue, Cycles start)
{
    VaultStats stats;
    busFree_ = std::max(busFree_, start);
    for (auto &b : banks_) {
        b.nextCol = std::max(b.nextCol, start);
        b.preReady = std::max(b.preReady, start);
    }

    // FR-FCFS-lite: within a bounded lookahead window pick the oldest
    // request that hits an open row; fall back to the oldest request.
    std::vector<std::size_t> pending;
    std::size_t next = 0;
    const std::size_t n = queue.size();
    pending.reserve(window_);

    while (next < n || !pending.empty()) {
        while (next < n && pending.size() < window_)
            pending.push_back(next++);

        std::size_t pick = 0;
        bool found_hit = false;
        for (std::size_t i = 0; i < pending.size(); ++i) {
            const Request &r = queue[pending[i]];
            const Bank &b = banks_[bankOf(r.addr)];
            if (b.openRow == static_cast<std::int64_t>(rowOf(r.addr))) {
                pick = i;
                found_hit = true;
                break; // oldest hit wins
            }
        }
        if (!found_hit)
            pick = 0; // oldest overall

        serviceOne(queue[pending[pick]], stats);
        pending.erase(pending.begin() +
                      static_cast<std::ptrdiff_t>(pick));
    }

    stats.busyUntil = std::max(stats.busyUntil, start);

    // All-bank refresh steals tRFC out of every tREFI window; model it
    // as a proportional stretch of the busy interval (the scheduler
    // cannot hide it for long bursts of traffic).
    if (timing_.tREFI > 0 && stats.busyUntil > start) {
        Cycles busy = stats.busyUntil - start;
        stats.refreshes = busy / timing_.tREFI;
        stats.busyUntil += stats.refreshes * timing_.tRFC;
    }
    return stats;
}

} // namespace mealib::dram
