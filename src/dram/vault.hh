/**
 * @file
 * Per-vault controller model: banks with open-page row-buffer state, a
 * shared per-vault data (TSV) bus, and an FR-FCFS-lite scheduling window
 * that prefers row-buffer hits within a small lookahead.
 */

#ifndef MEALIB_DRAM_VAULT_HH
#define MEALIB_DRAM_VAULT_HH

#include <cstdint>
#include <vector>

#include "dram/params.hh"
#include "dram/request.hh"

namespace mealib::dram {

/** Row-buffer management policy of the vault controller. */
enum class PagePolicy
{
    Open,   //!< keep rows open, exploit hits (the MEALib default)
    Closed, //!< auto-precharge after every access
};

/** Statistics produced by one vault over a simulated request stream. */
struct VaultStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t activates = 0;
    std::uint64_t refreshes = 0;
    Cycles busyUntil = 0; //!< cycle at which the vault finishes

    VaultStats &
    operator+=(const VaultStats &o)
    {
        reads += o.reads;
        writes += o.writes;
        bytesRead += o.bytesRead;
        bytesWritten += o.bytesWritten;
        rowHits += o.rowHits;
        rowMisses += o.rowMisses;
        activates += o.activates;
        refreshes += o.refreshes;
        busyUntil = busyUntil > o.busyUntil ? busyUntil : o.busyUntil;
        return *this;
    }
};

/**
 * One vault: @c banksPerVault banks behind a vault controller. The
 * controller services a queue of requests, reordering within a fixed
 * lookahead window to exploit open rows (FR-FCFS without starvation
 * because the window is bounded).
 */
class Vault
{
  public:
    Vault(const TimingParams &timing, const OrgParams &org,
          unsigned window = 8, PagePolicy policy = PagePolicy::Open);

    /**
     * Service @p queue to completion starting at cycle @p start.
     * Requests carry vault-local addresses. @return stats including the
     * completion cycle.
     */
    VaultStats service(const std::vector<Request> &queue, Cycles start);

    /** Reset bank state (all rows closed). */
    void reset();

    /** Scheduling lookahead window (1 = strict FCFS). */
    unsigned window() const { return window_; }

    /** Row-buffer policy in effect. */
    PagePolicy policy() const { return policy_; }

  private:
    struct Bank
    {
        std::int64_t openRow = -1; //!< -1 = precharged
        Cycles nextCol = 0;        //!< earliest next column command (tCCD)
        Cycles activatedAt = 0;    //!< when the open row was activated
        Cycles preReady = 0;       //!< earliest next precharge (tWR etc.)
    };

    /** Row index of a vault-local address. */
    std::uint64_t
    rowOf(Addr a) const
    {
        return a / org_.rowBytes;
    }

    /** Bank index of a vault-local address. */
    unsigned
    bankOf(Addr a) const
    {
        return static_cast<unsigned>(rowOf(a) % org_.banksPerVault);
    }

    /** Service one request; updates bank and bus state. */
    void serviceOne(const Request &req, VaultStats &stats);

    TimingParams timing_;
    OrgParams org_;
    unsigned window_;
    PagePolicy policy_;
    std::vector<Bank> banks_;
    Cycles busFree_ = 0; //!< per-vault data bus availability
};

} // namespace mealib::dram

#endif // MEALIB_DRAM_VAULT_HH
