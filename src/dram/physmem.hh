/**
 * @file
 * Functional backing store for the simulated physical address space.
 *
 * The timing/energy side of the simulation works on addresses alone; the
 * functional side (accelerator executors, the runtime's shared-memory
 * manager) needs actual bytes. PhysMem is that byte arena: a bounds-
 * checked, zero-initialized region representing the beginning of the
 * stack's physical space. The modeled capacity may exceed the backing
 * size; only functionally-used addresses must fit the backing.
 */

#ifndef MEALIB_DRAM_PHYSMEM_HH
#define MEALIB_DRAM_PHYSMEM_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/units.hh"

namespace mealib::dram {

/** Byte-addressable functional memory. */
class PhysMem
{
  public:
    /** @param backingBytes bytes of functional storage to allocate. */
    explicit PhysMem(std::uint64_t backingBytes)
        : mem_(backingBytes, 0)
    {
        fatalIf(backingBytes == 0, "physmem: zero backing size");
    }

    std::uint64_t size() const { return mem_.size(); }

    /** Raw byte pointer to [addr, addr+bytes); fatal() if out of range. */
    std::uint8_t *
    raw(Addr addr, std::uint64_t bytes)
    {
        check(addr, bytes);
        return mem_.data() + addr;
    }

    const std::uint8_t *
    raw(Addr addr, std::uint64_t bytes) const
    {
        check(addr, bytes);
        return mem_.data() + addr;
    }

    /** Typed pointer to @p count elements of T at @p addr. */
    template <typename T>
    T *
    ptr(Addr addr, std::uint64_t count)
    {
        fatalIf(addr % alignof(T) != 0, "physmem: misaligned access at ",
                addr);
        return reinterpret_cast<T *>(raw(addr, count * sizeof(T)));
    }

    template <typename T>
    const T *
    ptr(Addr addr, std::uint64_t count) const
    {
        fatalIf(addr % alignof(T) != 0, "physmem: misaligned access at ",
                addr);
        return reinterpret_cast<const T *>(raw(addr, count * sizeof(T)));
    }

  private:
    void
    check(Addr addr, std::uint64_t bytes) const
    {
        fatalIf(addr + bytes > mem_.size() || addr + bytes < addr,
                "physmem: access [", addr, ", ", addr + bytes,
                ") outside backing of ", mem_.size(), " bytes");
    }

    std::vector<std::uint8_t> mem_;
};

} // namespace mealib::dram

#endif // MEALIB_DRAM_PHYSMEM_HH
