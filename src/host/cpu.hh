/**
 * @file
 * Analytical host-processor model.
 *
 * The paper's methodology (Sec. 4) measures the host natively and
 * simulates only the accelerated stack. Without the authors' testbed we
 * replace the measurement with a roofline execution model plus a
 * per-component power model: a kernel is summarized as a KernelProfile
 * (flops, traffic, efficiency factors) and the model returns time and
 * energy. Parameters for the two hosts of Table 3 (Haswell i7-4770K and
 * Xeon Phi 5110P) are provided as presets.
 */

#ifndef MEALIB_HOST_CPU_HH
#define MEALIB_HOST_CPU_HH

#include <cstdint>
#include <string>

#include "common/units.hh"
#include "dram/params.hh"

namespace mealib::host {

/** Machine-independent summary of one kernel execution on the host. */
struct KernelProfile
{
    std::string name;
    double flops = 0.0;            //!< floating-point operations
    double bytesRead = 0.0;        //!< DRAM read traffic
    double bytesWritten = 0.0;     //!< DRAM write traffic
    double simdEff = 1.0;          //!< fraction of peak issue achieved
    double parallelFraction = 1.0; //!< Amdahl parallel fraction
    double memEff = 0.8;           //!< fraction of peak bandwidth achieved
    double callOverheads = 0.0;    //!< per-call fixed time (launch etc.), s

    double
    bytes() const
    {
        return bytesRead + bytesWritten;
    }
};

/** Host processor description. */
struct CpuParams
{
    std::string name;
    unsigned cores = 0;
    double freq = 0.0;            //!< core clock, Hz
    double flopsPerCycle = 0.0;   //!< per core, single precision
    double memBandwidth = 0.0;    //!< peak DRAM bandwidth, B/s
    double idleW = 0.0;           //!< package power at idle
    double perCoreActiveW = 0.0;  //!< extra power per busy core
    double stallPowerFactor = 0.6;//!< busy-core power while memory-stalled
    std::uint64_t llcBytes = 0;   //!< last-level cache capacity
    dram::DramParams dram;        //!< attached memory (for energy)

    /** Peak single-precision throughput, flop/s. */
    double
    peakFlops() const
    {
        return static_cast<double>(cores) * freq * flopsPerCycle;
    }
};

/** Haswell i7-4770K as configured in Table 3 (112 GFLOPS, 25.6 GB/s). */
CpuParams haswell4770k();

/** Xeon Phi 5110P as configured in Table 3 (60 cores, 320 GB/s). */
CpuParams xeonPhi5110p();

/** Roofline + power model for a host processor. */
class CpuModel
{
  public:
    explicit CpuModel(const CpuParams &params);

    /** Time/energy of executing @p profile once. */
    Cost run(const KernelProfile &profile) const;

    /**
     * Cost of flushing @p dirtyBytes of cached data back to DRAM before
     * handing the arrays to memory-side accelerators (the wbinvd step of
     * mealib_acc_execute). Writes back at peak bandwidth plus a fixed
     * instruction latency; also invalidates, so later host reads re-fetch.
     */
    Cost flushCost(std::uint64_t dirtyBytes) const;

    /** Package+DRAM power while idling for @p seconds. */
    Cost idleCost(double seconds) const;

    const CpuParams &params() const { return params_; }

  private:
    /** DRAM energy for a traffic summary (analytic, no cycle sim). */
    double dramEnergy(double bytesRead, double bytesWritten,
                      double seconds) const;

    CpuParams params_;
};

} // namespace mealib::host

#endif // MEALIB_HOST_CPU_HH
