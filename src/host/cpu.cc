#include "host/cpu.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "hwmodel/profile.hh"

namespace mealib::host {

// The Table 3 parameter values live in the hardware-model registry
// (src/hwmodel/presets.cc); these factories remain as the module-local
// spelling.

CpuParams
haswell4770k()
{
    return hwmodel::haswell4770kParams();
}

CpuParams
xeonPhi5110p()
{
    return hwmodel::xeonPhi5110pParams();
}

CpuModel::CpuModel(const CpuParams &params) : params_(params)
{
    fatalIf(params_.cores == 0, "CPU needs at least one core");
    fatalIf(params_.freq <= 0.0, "CPU clock must be positive");
    fatalIf(params_.memBandwidth <= 0.0, "CPU bandwidth must be positive");
}

double
CpuModel::dramEnergy(double bytesRead, double bytesWritten,
                     double seconds) const
{
    const dram::EnergyParams &e = params_.dram.energy;
    // Streaming estimate: one activation per row's worth of traffic.
    double rows = (bytesRead + bytesWritten) /
                  static_cast<double>(params_.dram.org.rowBytes);
    double dyn = rows * e.activateJ + bytesRead * e.readJPerByte +
                 bytesWritten * e.writeJPerByte +
                 (bytesRead + bytesWritten) * e.tsvJPerByte;
    double bg = e.backgroundWPerVault *
                static_cast<double>(params_.dram.org.numVaults) * seconds;
    return dyn + bg;
}

Cost
CpuModel::run(const KernelProfile &p) const
{
    fatalIf(p.simdEff <= 0.0 || p.simdEff > 1.0,
            "simdEff out of (0,1]: ", p.simdEff);
    fatalIf(p.memEff <= 0.0 || p.memEff > 1.0,
            "memEff out of (0,1]: ", p.memEff);
    fatalIf(p.parallelFraction < 0.0 || p.parallelFraction > 1.0,
            "parallelFraction out of [0,1]");

    // Amdahl-limited multicore speedup.
    double n = static_cast<double>(params_.cores);
    double amdahl =
        1.0 / ((1.0 - p.parallelFraction) + p.parallelFraction / n);

    double compute_rate =
        params_.freq * params_.flopsPerCycle * p.simdEff * amdahl;
    double compute_s = p.flops > 0.0 ? p.flops / compute_rate : 0.0;

    double mem_s = p.bytes() / (params_.memBandwidth * p.memEff);

    double busy_s = std::max(compute_s, mem_s) + p.callOverheads;
    bool mem_bound = mem_s >= compute_s;

    // Busy cores burn less power while memory-stalled.
    double cores_busy = std::min(n, amdahl);
    double core_w = params_.perCoreActiveW * cores_busy *
                    (mem_bound ? params_.stallPowerFactor : 1.0);
    double package_j = (params_.idleW + core_w) * busy_s;

    Cost c;
    c.seconds = busy_s;
    c.joules = package_j + dramEnergy(p.bytesRead, p.bytesWritten, busy_s);
    return c;
}

Cost
CpuModel::flushCost(std::uint64_t dirtyBytes) const
{
    // The runtime picks the cheaper coherence strategy: a clflush sweep
    // over the operand range for small footprints, or a full wbinvd for
    // large ones. Either way at most the LLC's worth of dirty lines is
    // written back.
    double dirty = static_cast<double>(
        std::min<std::uint64_t>(dirtyBytes, params_.llcBytes));
    double wb_s = dirty / params_.memBandwidth;
    const double clflush_s = 5.0e-6 +
        static_cast<double>(dirtyBytes) / 50.0e9 + wb_s;
    const double wbinvd_s = 1.5e-4 + wb_s;
    double s = std::min(clflush_s, wbinvd_s);

    Cost c;
    c.seconds = s;
    c.joules = (params_.idleW + params_.perCoreActiveW) * s +
               dramEnergy(0.0, dirty, s);
    return c;
}

Cost
CpuModel::idleCost(double seconds) const
{
    Cost c;
    c.seconds = seconds;
    c.joules = params_.idleW * seconds +
               dramEnergy(0.0, 0.0, seconds);
    return c;
}

} // namespace mealib::host
