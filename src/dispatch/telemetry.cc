#include "dispatch/telemetry.hh"

#include <cstdio>

#include "common/logging.hh"

namespace mealib::dispatch {

const char *
name(FallbackReason reason)
{
    switch (reason) {
      case FallbackReason::None:
        return "none";
      case FallbackReason::NoBackend:
        return "no_backend";
      case FallbackReason::Unsupported:
        return "unsupported";
      case FallbackReason::Unmappable:
        return "unmappable";
      case FallbackReason::BackendError:
        return "backend_error";
      default:
        panic("name: bad FallbackReason");
    }
}

std::uint64_t
DispatchStats::totalCalls() const
{
    std::uint64_t t = 0;
    for (const OpStats &s : byKind)
        t += s.calls;
    return t;
}

std::uint64_t
DispatchStats::totalOffloaded() const
{
    std::uint64_t t = 0;
    for (const OpStats &s : byKind)
        t += s.offloaded;
    return t;
}

std::uint64_t
DispatchStats::totalAccelDecisions() const
{
    std::uint64_t t = 0;
    for (const OpStats &s : byKind)
        t += s.accelDecisions;
    return t;
}

double
DispatchStats::totalBytes() const
{
    double t = 0.0;
    for (const OpStats &s : byKind)
        t += s.bytes;
    return t;
}

double
DispatchStats::totalBytesOffloaded() const
{
    double t = 0.0;
    for (const OpStats &s : byKind)
        t += s.bytesOffloaded;
    return t;
}

double
DispatchStats::offloadRatio() const
{
    std::uint64_t calls = totalCalls();
    return calls > 0 ? static_cast<double>(totalAccelDecisions()) /
                           static_cast<double>(calls)
                     : 0.0;
}

double
DispatchStats::byteOffloadRatio() const
{
    double bytes = totalBytes();
    return bytes > 0.0 ? totalBytesOffloaded() / bytes : 0.0;
}

namespace {

std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace

std::string
DispatchStats::toJson(const std::string &policyName) const
{
    std::string out = "{\n";
    out += "  \"policy\": \"" + policyName + "\",\n";
    out += "  \"calls\": " + u64(totalCalls()) + ",\n";
    out += "  \"accel_decisions\": " + u64(totalAccelDecisions()) + ",\n";
    out += "  \"offloaded\": " + u64(totalOffloaded()) + ",\n";
    out += "  \"offload_ratio\": " + num(offloadRatio()) + ",\n";
    out += "  \"bytes\": " + num(totalBytes()) + ",\n";
    out += "  \"bytes_offloaded\": " + num(totalBytesOffloaded()) + ",\n";
    out += "  \"byte_offload_ratio\": " + num(byteOffloadRatio()) + ",\n";
    out += "  \"ops\": [\n";
    bool first = true;
    for (std::size_t k = 0; k < byKind.size(); ++k) {
        const OpStats &s = byKind[k];
        if (s.calls == 0)
            continue;
        if (!first)
            out += ",\n";
        first = false;
        out += "    {\"kind\": \"" +
               std::string(name(static_cast<OpKind>(k))) + "\"";
        out += ", \"calls\": " + u64(s.calls);
        out += ", \"host_decisions\": " + u64(s.hostDecisions);
        out += ", \"accel_decisions\": " + u64(s.accelDecisions);
        out += ", \"offloaded\": " + u64(s.offloaded);
        out += ", \"fallbacks\": " + u64(s.fallbacks);
        out += ", \"flops\": " + num(s.flops);
        out += ", \"bytes\": " + num(s.bytes);
        out += ", \"bytes_offloaded\": " + num(s.bytesOffloaded);
        for (std::size_t r = 1;
             r < static_cast<std::size_t>(FallbackReason::kCount); ++r) {
            if (s.fallbackBy[r] == 0)
                continue;
            out += ", \"fallback_" +
                   std::string(name(static_cast<FallbackReason>(r))) +
                   "\": " + u64(s.fallbackBy[r]);
        }
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

} // namespace mealib::dispatch
