#include "dispatch/ops.hh"

#include "dispatch/dispatcher.hh"
#include "minimkl/blas1.hh"
#include "minimkl/blas2.hh"
#include "minimkl/blas3.hh"
#include "minimkl/transpose.hh"

namespace mealib::dispatch::ops {

void
saxpy(std::int64_t n, float a, const float *x, std::int64_t incx,
      float *y, std::int64_t incy)
{
    OpDesc d = lowerSaxpy(n, a, x, incx, y, incy);
    currentDispatcher().run(
        d, [&] { mkl::saxpy(n, a, x, incx, y, incy); });
}

void
saxpby(std::int64_t n, float a, const float *x, std::int64_t incx,
       float b, float *y, std::int64_t incy)
{
    OpDesc d = lowerSaxpby(n, a, x, incx, b, y, incy);
    currentDispatcher().run(
        d, [&] { mkl::saxpby(n, a, x, incx, b, y, incy); });
}

void
caxpy(std::int64_t n, mkl::cfloat a, const mkl::cfloat *x,
      std::int64_t incx, mkl::cfloat *y, std::int64_t incy)
{
    OpDesc d = lowerCaxpy(n, a, x, incx, y, incy);
    currentDispatcher().run(
        d, [&] { mkl::caxpy(n, a, x, incx, y, incy); });
}

float
sdot(std::int64_t n, const float *x, std::int64_t incx, const float *y,
     std::int64_t incy)
{
    float r = 0.0f;
    OpDesc d = lowerSdot(n, x, incx, y, incy, &r);
    currentDispatcher().run(
        d, [&] { r = mkl::sdot(n, x, incx, y, incy); });
    return r;
}

mkl::cfloat
cdotc(std::int64_t n, const mkl::cfloat *x, std::int64_t incx,
      const mkl::cfloat *y, std::int64_t incy)
{
    mkl::cfloat r{};
    OpDesc d = lowerCdotc(n, x, incx, y, incy, &r);
    currentDispatcher().run(
        d, [&] { r = mkl::cdotc(n, x, incx, y, incy); });
    return r;
}

void
sgemv(mkl::Order order, mkl::Transpose trans, std::int64_t m,
      std::int64_t n, float alpha, const float *a, std::int64_t lda,
      const float *x, std::int64_t incx, float beta, float *y,
      std::int64_t incy)
{
    OpDesc d = lowerSgemv(order, trans, m, n, alpha, a, lda, x, incx,
                          beta, y, incy);
    currentDispatcher().run(d, [&] {
        mkl::sgemv(order, trans, m, n, alpha, a, lda, x, incx, beta, y,
                   incy);
    });
}

void
scsrmv(const mkl::CsrMatrix &a, const float *x, float *y)
{
    OpDesc d = lowerScsrmv(a, x, y);
    currentDispatcher().run(d, [&] { mkl::scsrmv(a, x, y); });
}

void
cherk(mkl::Order order, mkl::Uplo uplo, mkl::Transpose trans,
      std::int64_t n, std::int64_t k, float alpha, const mkl::cfloat *a,
      std::int64_t lda, float beta, mkl::cfloat *c, std::int64_t ldc)
{
    OpDesc d = lowerCherk(n, k, a, beta, c);
    currentDispatcher().run(d, [&] {
        mkl::cherk(order, uplo, trans, n, k, alpha, a, lda, beta, c,
                   ldc);
    });
}

void
ctrsm(mkl::Order order, mkl::Side side, mkl::Uplo uplo,
      mkl::Transpose trans, mkl::Diag diag, std::int64_t m,
      std::int64_t n, mkl::cfloat alpha, const mkl::cfloat *a,
      std::int64_t lda, mkl::cfloat *b, std::int64_t ldb)
{
    OpDesc d = lowerCtrsm(m, n, a, b);
    currentDispatcher().run(d, [&] {
        mkl::ctrsm(order, side, uplo, trans, diag, m, n, alpha, a, lda,
                   b, ldb);
    });
}

void
comatcopy(mkl::Order order, mkl::Transpose trans, std::int64_t rows,
          std::int64_t cols, mkl::cfloat alpha, const mkl::cfloat *a,
          std::int64_t lda, mkl::cfloat *b, std::int64_t ldb)
{
    // The RESHP accelerator's functional path handles the in-place
    // real transpose; out-of-place complex copies stay host-side, so
    // mark the mapping unavailable while keeping the decision honest.
    OpDesc d =
        lowerTranspose(rows, cols, alpha.real(),
                       reinterpret_cast<const float *>(a),
                       reinterpret_cast<float *>(b), true, false);
    currentDispatcher().run(d, [&] {
        mkl::comatcopy(order, trans, rows, cols, alpha, a, lda, b, ldb);
    });
}

} // namespace mealib::dispatch::ops
