/**
 * @file
 * AccelBackend over the MEALib runtime.
 *
 * Translates an OpDesc into a descriptor program — host operand
 * pointers become physical stack addresses via MealibRuntime::
 * tryPhysOf(); null pointers keep the bases preset in the OpCall (the
 * TDL path) — submits it on the PR-1 command queues, and reports the
 * Event outcome as a Status. Operands outside the runtime arena make
 * execute() decline with InvalidArgument so the dispatcher records an
 * unmappable fallback and runs the host kernel instead.
 */

#ifndef MEALIB_DISPATCH_BACKEND_HH
#define MEALIB_DISPATCH_BACKEND_HH

#include "dispatch/dispatcher.hh"
#include "runtime/runtime.hh"

namespace mealib::dispatch {

/** Dispatcher backend executing descriptors on a MealibRuntime. */
class RuntimeBackend final : public AccelBackend
{
  public:
    /** @p rt must outlive the backend (and be functional for the
     * results to be real; a cost-only runtime models time/energy but
     * leaves the output buffers untouched). */
    explicit RuntimeBackend(runtime::MealibRuntime &rt) : rt_(rt) {}

    const char *name() const override { return "mealib-runtime"; }

    Status execute(const OpDesc &desc) override;

    /** Selectable (not failed, not quarantined) stacks over total, so
     * the dispatcher's cost comparisons track substrate health. */
    double
    healthyFraction() const override
    {
        const unsigned total = rt_.numStacks();
        if (total == 0)
            return 0.0;
        return static_cast<double>(rt_.selectableStackCount()) / total;
    }

    runtime::MealibRuntime &runtime() { return rt_; }

  private:
    runtime::MealibRuntime &rt_;
};

} // namespace mealib::dispatch

#endif // MEALIB_DISPATCH_BACKEND_HH
