/**
 * @file
 * AccelBackend over the MEALib runtime.
 *
 * Translates an OpDesc into a descriptor program — host operand
 * pointers become physical stack addresses via MealibRuntime::
 * tryPhysOf(); null pointers keep the bases preset in the OpCall (the
 * TDL path) — submits it on the PR-1 command queues, and reports the
 * Event outcome as a Status. Operands outside the runtime arena make
 * execute() decline with InvalidArgument so the dispatcher records an
 * unmappable fallback and runs the host kernel instead.
 *
 * With a fusion window > 1 the backend batches adjacent accel-decided
 * calls homed on the same stack into ONE multi-COMP descriptor program
 * (docs/DISPATCH.md): the chain pays a single flush + START handshake
 * instead of one per call. The window flushes when it fills, when a
 * call for a different home stack arrives, or on sync() — which the
 * dispatcher invokes before any host kernel runs and on detach, so
 * host code never reads a buffered-but-unexecuted result. Functional
 * results are bit-for-bit identical to the unfused path (the runtime
 * executes COMPs in program order either way).
 */

#ifndef MEALIB_DISPATCH_BACKEND_HH
#define MEALIB_DISPATCH_BACKEND_HH

#include <mutex>
#include <vector>

#include "dispatch/dispatcher.hh"
#include "runtime/runtime.hh"

namespace mealib::dispatch {

/** MEALIB_FUSION_WINDOW environment default (unset/bad = 1, i.e. the
 * exact legacy one-program-per-call behaviour). */
unsigned fusionWindowFromEnv();

/** Dispatcher backend executing descriptors on a MealibRuntime. */
class RuntimeBackend final : public AccelBackend
{
  public:
    /** @p rt must outlive the backend (and be functional for the
     * results to be real; a cost-only runtime models time/energy but
     * leaves the output buffers untouched). @p fusionWindow is the
     * maximum COMPs batched into one descriptor program; 1 disables
     * fusion (bit-for-bit legacy submission). */
    explicit RuntimeBackend(runtime::MealibRuntime &rt,
                            unsigned fusionWindow = fusionWindowFromEnv())
        : rt_(rt), window_(fusionWindow < 1 ? 1 : fusionWindow)
    {
    }

    ~RuntimeBackend() override { sync(); }

    const char *name() const override { return "mealib-runtime"; }

    Status execute(const OpDesc &desc) override;

    /** Submit every buffered call as one fused program. Safe to call
     * with an empty window. The flush outcome only shapes modeled cost
     * and telemetry — functional results are computed regardless. */
    void sync() override;

    /** Selectable (not failed, not quarantined) stacks over total, so
     * the dispatcher's cost comparisons track substrate health. */
    double
    healthyFraction() const override
    {
        const unsigned total = rt_.numStacks();
        if (total == 0)
            return 0.0;
        return static_cast<double>(rt_.selectableStackCount()) / total;
    }

    unsigned fusionWindow() const { return window_; }

    /** Calls currently buffered (tests inspect the window state). */
    std::size_t
    pendingCount() const
    {
        std::lock_guard<std::mutex> lock(wmu_);
        return pending_.size();
    }

    runtime::MealibRuntime &runtime() { return rt_; }

  private:
    /** One buffered accel-decided call. */
    struct PendingCall
    {
        accel::OpCall call;
        accel::LoopSpec loop;
    };

    /** Map host operand pointers to physical bases; decline when an
     * operand is outside the accelerator arena. */
    Status mapCall(const OpDesc &desc, accel::OpCall *out) const;

    /** Build + submit one program from the buffered calls. Requires
     * wmu_ held; calls into the (internally locked) runtime — lock
     * order is backend window → runtime, never the reverse. */
    Status flushPendingLocked();

    runtime::MealibRuntime &rt_;
    unsigned window_ = 1;
    /** Guards the fusion window (pending_/home_): a session's
     * dispatcher may be driven by several threads at once. */
    mutable std::mutex wmu_;
    unsigned home_ = 0; //!< home stack of the buffered calls
    std::vector<PendingCall> pending_;
};

} // namespace mealib::dispatch

#endif // MEALIB_DISPATCH_BACKEND_HH
