/**
 * @file
 * Dispatched library entry points for application code.
 *
 * Same signatures and numerics as the mkl:: kernels they wrap — under
 * the default HostOnly policy each wrapper is exactly one mkl:: call —
 * but every invocation lowers into an OpDesc and flows through the
 * calling thread's current dispatcher (the bound session's, else
 * Dispatcher::global()), so the apps' library calls are counted,
 * policy-routed and offloadable without touching the call sites again.
 */

#ifndef MEALIB_DISPATCH_OPS_HH
#define MEALIB_DISPATCH_OPS_HH

#include <cstdint>

#include "minimkl/sparse.hh"
#include "minimkl/types.hh"

namespace mealib::dispatch::ops {

void saxpy(std::int64_t n, float a, const float *x, std::int64_t incx,
           float *y, std::int64_t incy);
void saxpby(std::int64_t n, float a, const float *x, std::int64_t incx,
            float b, float *y, std::int64_t incy);
void caxpy(std::int64_t n, mkl::cfloat a, const mkl::cfloat *x,
           std::int64_t incx, mkl::cfloat *y, std::int64_t incy);
float sdot(std::int64_t n, const float *x, std::int64_t incx,
           const float *y, std::int64_t incy);
mkl::cfloat cdotc(std::int64_t n, const mkl::cfloat *x,
                  std::int64_t incx, const mkl::cfloat *y,
                  std::int64_t incy);
void sgemv(mkl::Order order, mkl::Transpose trans, std::int64_t m,
           std::int64_t n, float alpha, const float *a, std::int64_t lda,
           const float *x, std::int64_t incx, float beta, float *y,
           std::int64_t incy);
void scsrmv(const mkl::CsrMatrix &a, const float *x, float *y);
void cherk(mkl::Order order, mkl::Uplo uplo, mkl::Transpose trans,
           std::int64_t n, std::int64_t k, float alpha,
           const mkl::cfloat *a, std::int64_t lda, float beta,
           mkl::cfloat *c, std::int64_t ldc);
void ctrsm(mkl::Order order, mkl::Side side, mkl::Uplo uplo,
           mkl::Transpose trans, mkl::Diag diag, std::int64_t m,
           std::int64_t n, mkl::cfloat alpha, const mkl::cfloat *a,
           std::int64_t lda, mkl::cfloat *b, std::int64_t ldb);
void comatcopy(mkl::Order order, mkl::Transpose trans, std::int64_t rows,
               std::int64_t cols, mkl::cfloat alpha, const mkl::cfloat *a,
               std::int64_t lda, mkl::cfloat *b, std::int64_t ldb);

} // namespace mealib::dispatch::ops

#endif // MEALIB_DISPATCH_OPS_HH
