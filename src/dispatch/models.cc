#include "dispatch/models.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "accel/config.hh"
#include "accel/model.hh"
#include "common/logging.hh"

namespace mealib::dispatch {

namespace {

/**
 * Streaming-triad microprobe: measured sustained bandwidth of the
 * machine this process actually runs on, best of three timed passes
 * over an L3-exceeding working set (one warm-up pass discarded).
 */
double
probeStreamBandwidthGBs()
{
    const std::size_t n = std::size_t{1} << 21; // 8 MiB per array
    std::vector<float> a(n, 1.0f), b(n, 2.0f), c(n, 3.0f);
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 4; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < n; ++i)
            a[i] = b[i] + 0.5f * c[i];
        const auto t1 = std::chrono::steady_clock::now();
        // The first pass warms the pages and the caches.
        if (rep > 0)
            best = std::min(
                best, std::chrono::duration<double>(t1 - t0).count());
        volatile float sink = a[n / 2];
        (void)sink;
    }
    if (!(best > 0.0))
        return 0.0;
    const double bytes =
        3.0 * static_cast<double>(n) * sizeof(float); // 2 reads + 1 write
    return bytes / best * 1e-9;
}

/**
 * measured/modeled host-bandwidth ratio for @p machine, probed once per
 * (process, profile) when MEALIB_HOST_CALIBRATE is set; 1.0 otherwise.
 */
double
hostThroughputScale(const hwmodel::MachineProfile &machine)
{
    const char *env = std::getenv("MEALIB_HOST_CALIBRATE");
    if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0)
        return 1.0;
    static std::mutex mu;
    static std::map<const hwmodel::MachineProfile *, double> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(&machine);
    if (it != cache.end())
        return it->second;
    const double measured = probeStreamBandwidthGBs();
    const double modeled = machine.cpu.memBandwidth * 1e-9;
    double scale = modeled > 0.0 && measured > 0.0 ? measured / modeled
                                                   : 1.0;
    // A wildly off probe (noisy neighbour, throttled core) must not
    // invert dispatch decisions by orders of magnitude.
    scale = std::clamp(scale, 0.05, 20.0);
    cache.emplace(&machine, scale);
    return scale;
}

} // namespace

const hwmodel::MachineProfile &
machineFor(HostKind host)
{
    return hwmodel::profile(host == HostKind::XeonPhi ? "xeonphi5110p"
                                                      : "haswell4770k");
}

HostOpProfile
hostOpProfile(HostKind host, accel::AccelKind kind)
{
    // The calibration tables live in the machine profiles
    // (src/hwmodel/profile.cc) so dispatch, eval and the benches price
    // host execution from the same source.
    return machineFor(host).opEfficiency(kind);
}

host::KernelProfile
hostKernelProfile(const hwmodel::MachineProfile &m,
                  const accel::OpCall &call, const accel::LoopSpec &loop)
{
    const HostOpProfile &p = m.opEfficiency(call.kind);
    double iters = static_cast<double>(loop.iterations());

    host::KernelProfile k;
    k.name = accel::name(call.kind);
    k.flops = call.flops() * iters;
    // Reuse-aware traffic: loop dimensions with zero operand stride hit
    // the host's caches, symmetric with the accelerator-side modeling.
    double traffic =
        accel::loopedTrafficBytes(call, loop) * p.trafficFactor;
    k.bytesRead = traffic * 0.75;
    k.bytesWritten = traffic * 0.25;
    k.simdEff = p.simdEff;
    // Short vectors leave the SIMD pipeline mostly empty (ramp-up,
    // horizontal reductions): the 36-element STAP dots reach a fraction
    // of the streaming kernels' issue efficiency.
    if (call.n < m.shortVectorElems)
        k.simdEff *= m.shortVectorSimdFactor;
    k.memEff = p.memEff;
    k.parallelFraction = p.parallelFraction;
    // Library call dispatch + thread wakeup; heavier on the Phi.
    k.callOverheads = m.callOverheadSeconds;
    return k;
}

host::KernelProfile
hostKernelProfile(HostKind host, const accel::OpCall &call,
                  const accel::LoopSpec &loop)
{
    return hostKernelProfile(machineFor(host), call, loop);
}

RooflineCostModel::RooflineCostModel()
    : RooflineCostModel(hwmodel::activeProfile())
{
}

RooflineCostModel::RooflineCostModel(
    const hwmodel::MachineProfile &machine)
    : machine_(machine), cpu_(machine.cpu),
      hostScale_(hostThroughputScale(machine))
{
}

RooflineCostModel::Key
RooflineCostModel::keyOf(const OpDesc &desc, unsigned window)
{
    return {static_cast<std::uint8_t>(desc.kind), desc.call.n,
            desc.call.m, desc.call.k, desc.call.complexData,
            desc.loop.iterations(), window};
}

double
RooflineCostModel::hostSeconds(const OpDesc &desc) const
{
    // The fusion window only affects accelerator-side amortization.
    Key key = keyOf(desc, 1);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = hostCache_.find(key);
        if (it != hostCache_.end())
            return it->second;
    }

    host::KernelProfile p;
    if (accelerable(desc.kind)) {
        p = hostKernelProfile(machine_, desc.call, desc.loop);
    } else {
        // Host-only kinds (GEMM, HERK, TRSM, SCAL, COPY): build a
        // generic profile from the descriptor's flop/byte overrides.
        // Efficiencies are MKL-level-3-ish; these kinds are only ever
        // priced so the policy can confirm they stay on the host.
        p.name = name(desc.kind);
        p.flops = desc.flops();
        double traffic = desc.bytes();
        p.bytesRead = traffic * 0.75;
        p.bytesWritten = traffic * 0.25;
        p.simdEff = 0.8;
        p.memEff = 0.6;
        p.parallelFraction = 0.95;
        p.callOverheads = machine_.callOverheadSeconds;
    }
    double s = cpu_.run(p).seconds / hostScale_;

    std::lock_guard<std::mutex> lock(mu_);
    hostCache_.emplace(key, s);
    return s;
}

void
RooflineCostModel::setFusionWindow(unsigned window)
{
    std::lock_guard<std::mutex> lock(mu_);
    // No cache clear: accel estimates are keyed by the window they were
    // priced under, so toggling back reuses the earlier entries.
    fusionWindow_ = window < 1 ? 1 : window;
}

unsigned
RooflineCostModel::fusionWindow() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return fusionWindow_;
}

double
RooflineCostModel::accelSeconds(const OpDesc &desc) const
{
    if (!desc.accelSupported || !accelerable(desc.kind))
        return std::numeric_limits<double>::infinity();

    unsigned window = 1;
    {
        std::lock_guard<std::mutex> lock(mu_);
        window = fusionWindow_;
        auto it = accelCache_.find(keyOf(desc, window));
        if (it != accelCache_.end())
            return it->second;
    }
    Key key = keyOf(desc, window);

    accel::AccelKind kind = accelKindOf(desc.kind);
    accel::AccelModel model(kind, accel::defaultConfig(kind),
                            machine_.stackDram, machine_.mesh);
    accel::AccelEstimate e = model.estimate(desc.call, desc.loop);
    // Invocation overhead: the host must flush the input footprint out
    // of its caches before the memory-side units read DRAM directly,
    // then copy the descriptor and ring the START doorbell.
    double inputs = desc.call.inputBytes() *
                    static_cast<double>(desc.loop.iterations());
    // Loop reuse keeps the footprint smaller than inputs x iterations;
    // never flush more than the reuse-aware traffic of the whole plan.
    inputs = std::min(inputs, accel::loopedTrafficBytes(desc.call,
                                                        desc.loop));
    double flush =
        cpu_.flushCost(static_cast<std::uint64_t>(inputs)).seconds;
    // With a fusion window the backend packs up to `window` adjacent
    // calls into one descriptor program: one flush + handshake per
    // window instead of per call.
    double s = e.total.seconds +
               (flush + kHandshakeSeconds) / static_cast<double>(window);

    std::lock_guard<std::mutex> lock(mu_);
    accelCache_.emplace(key, s);
    return s;
}

} // namespace mealib::dispatch
