#include "dispatch/models.hh"

#include <algorithm>
#include <limits>

#include "accel/config.hh"
#include "accel/model.hh"
#include "common/logging.hh"
#include "dram/params.hh"
#include "noc/mesh.hh"

namespace mealib::dispatch {

HostOpProfile
hostOpProfile(HostKind host, accel::AccelKind kind)
{
    using accel::AccelKind;
    if (host == HostKind::Haswell) {
        switch (kind) {
          case AccelKind::AXPY:
            // Write-allocate turns 3 B/B into 4 B/B of bus traffic;
            // STREAM-like loops sustain ~60% of the 25.6 GB/s pair.
            return {4.0 / 3.0, 0.60, 0.9, 0.95};
          case AccelKind::DOT:
            // Pure reads, but the reduction and threading sync cost
            // some steady-state bandwidth.
            return {1.0, 0.50, 0.9, 0.90};
          case AccelKind::GEMV:
            return {1.05, 0.60, 0.9, 0.95};
          case AccelKind::SPMV:
            // rgg's vector mostly fits the LLC: traffic is ~the matrix
            // stream, but the gather-dependent loads cap efficiency.
            return {0.55, 0.35, 0.3, 0.90};
          case AccelKind::RESMP:
            // Windowed-sinc interpolation is compute-bound on the
            // host: short gather-heavy dots vectorize poorly.
            return {1.2, 0.60, 0.30, 0.95};
          case AccelKind::FFT:
            // Large 2D FFT: multiple blocked passes plus transposes
            // push traffic to ~2x the accelerator's two-pass scheme.
            return {2.0, 0.50, 0.35, 0.90};
          case AccelKind::RESHP:
            // Strided writes use a fraction of each cache line;
            // blocked MKL recovers some locality but efficiency stays
            // low — hence the paper's largest gain (88x).
            return {1.5, 0.20, 1.0, 0.90};
          default:
            panic("hostOpProfile: bad kind");
        }
    }
    // The paper observes (Sec. 5.1) that Xeon Phi barely beats — and
    // often trails — Haswell on these data sets: per-op efficiencies on
    // the 320 GB/s card are poor (60 in-order cores need far more
    // parallel slack than these kernels expose). Factors calibrated to
    // the paper's observations: AXPY 2.23x over Haswell, RESHP 0.024x.
    switch (kind) {
      case AccelKind::AXPY:
        return {4.0 / 3.0, 0.11, 0.5, 0.98};
      case AccelKind::DOT:
        return {1.0, 0.075, 0.5, 0.95};
      case AccelKind::GEMV:
        return {1.05, 0.06, 0.5, 0.95};
      case AccelKind::SPMV:
        return {0.55, 0.022, 0.2, 0.90};
      case AccelKind::RESMP:
        return {1.2, 0.30, 0.012, 0.95};
      case AccelKind::FFT:
        return {2.0, 0.065, 0.2, 0.90};
      case AccelKind::RESHP:
        // In-place strided transpose is pathological on the ring-based
        // in-order card: the paper measures 2.4% of Haswell.
        return {1.5, 0.00045, 1.0, 0.90};
      default:
        panic("hostOpProfile: bad kind");
    }
}

host::KernelProfile
hostKernelProfile(HostKind host, const accel::OpCall &call,
                  const accel::LoopSpec &loop)
{
    HostOpProfile p = hostOpProfile(host, call.kind);
    double iters = static_cast<double>(loop.iterations());

    host::KernelProfile k;
    k.name = accel::name(call.kind);
    k.flops = call.flops() * iters;
    // Reuse-aware traffic: loop dimensions with zero operand stride hit
    // the host's caches, symmetric with the accelerator-side modeling.
    double traffic =
        accel::loopedTrafficBytes(call, loop) * p.trafficFactor;
    k.bytesRead = traffic * 0.75;
    k.bytesWritten = traffic * 0.25;
    k.simdEff = p.simdEff;
    // Short vectors leave the SIMD pipeline mostly empty (ramp-up,
    // horizontal reductions): the 36-element STAP dots reach a fraction
    // of the streaming kernels' issue efficiency.
    if (call.n < 256)
        k.simdEff *= 0.4;
    k.memEff = p.memEff;
    k.parallelFraction = p.parallelFraction;
    // Library call dispatch + thread wakeup; heavier on the Phi.
    k.callOverheads = host == HostKind::XeonPhi ? 100e-6 : 5e-6;
    return k;
}

RooflineCostModel::RooflineCostModel() : cpu_(host::haswell4770k()) {}

RooflineCostModel::Key
RooflineCostModel::keyOf(const OpDesc &desc)
{
    return {static_cast<std::uint8_t>(desc.kind), desc.call.n,
            desc.call.m, desc.call.k, desc.call.complexData,
            desc.loop.iterations()};
}

double
RooflineCostModel::hostSeconds(const OpDesc &desc) const
{
    Key key = keyOf(desc);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = hostCache_.find(key);
        if (it != hostCache_.end())
            return it->second;
    }

    host::KernelProfile p;
    if (accelerable(desc.kind)) {
        p = hostKernelProfile(HostKind::Haswell, desc.call, desc.loop);
    } else {
        // Host-only kinds (GEMM, HERK, TRSM, SCAL, COPY): build a
        // generic profile from the descriptor's flop/byte overrides.
        // Efficiencies are MKL-level-3-ish; these kinds are only ever
        // priced so the policy can confirm they stay on the host.
        p.name = name(desc.kind);
        p.flops = desc.flops();
        double traffic = desc.bytes();
        p.bytesRead = traffic * 0.75;
        p.bytesWritten = traffic * 0.25;
        p.simdEff = 0.8;
        p.memEff = 0.6;
        p.parallelFraction = 0.95;
        p.callOverheads = 5e-6;
    }
    double s = cpu_.run(p).seconds;

    std::lock_guard<std::mutex> lock(mu_);
    hostCache_.emplace(key, s);
    return s;
}

double
RooflineCostModel::accelSeconds(const OpDesc &desc) const
{
    if (!desc.accelSupported || !accelerable(desc.kind))
        return std::numeric_limits<double>::infinity();

    Key key = keyOf(desc);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = accelCache_.find(key);
        if (it != accelCache_.end())
            return it->second;
    }

    accel::AccelKind kind = accelKindOf(desc.kind);
    accel::AccelModel model(kind, accel::defaultConfig(kind),
                            dram::hmcStack(), noc::mealibMesh());
    accel::AccelEstimate e = model.estimate(desc.call, desc.loop);
    // Invocation overhead: the host must flush the input footprint out
    // of its caches before the memory-side units read DRAM directly,
    // then copy the descriptor and ring the START doorbell.
    double inputs = desc.call.inputBytes() *
                    static_cast<double>(desc.loop.iterations());
    // Loop reuse keeps the footprint smaller than inputs x iterations;
    // never flush more than the reuse-aware traffic of the whole plan.
    inputs = std::min(inputs, accel::loopedTrafficBytes(desc.call,
                                                        desc.loop));
    double flush =
        cpu_.flushCost(static_cast<std::uint64_t>(inputs)).seconds;
    double s = e.total.seconds + flush + kHandshakeSeconds;

    std::lock_guard<std::mutex> lock(mu_);
    accelCache_.emplace(key, s);
    return s;
}

} // namespace mealib::dispatch
