/**
 * @file
 * Pluggable offload policies (docs/DISPATCH.md).
 *
 * A policy answers one question per call: host or accelerator? The
 * decision is what the paper's Table 2 prices — memory-bounded library
 * calls win on the memory-side accelerators, compute-bounded ones stay
 * on the host — and the four implementations bracket the design space:
 *
 *   HostOnly   never offload (bit-for-bit the legacy behaviour);
 *   AccelAlways offload everything the accelerators support;
 *   CrossoverModel compare the roofline host model against the
 *              accelerator model per call and pick the cheaper side;
 *   Calibrated measure (via the cost models) the first N calls of each
 *              kind, then stick with the winning side.
 */

#ifndef MEALIB_DISPATCH_POLICY_HH
#define MEALIB_DISPATCH_POLICY_HH

#include <array>
#include <memory>
#include <string>

#include "dispatch/opdesc.hh"

namespace mealib::dispatch {

/** Where a call executes. */
enum class Backend : std::uint8_t
{
    Host = 0,
    Accel,
};

/** Printable backend name ("host" / "accel"). */
const char *name(Backend backend);

/**
 * Cost oracle a policy may consult: modeled seconds for one call on
 * either side. accelSeconds() includes the invocation overhead (cache
 * flush, descriptor copy, START handshake) so small calls correctly
 * price as host-bound. Returns +inf for non-accelerable descriptors.
 */
class CostModel
{
  public:
    virtual ~CostModel() = default;
    virtual double hostSeconds(const OpDesc &desc) const = 0;
    virtual double accelSeconds(const OpDesc &desc) const = 0;
};

/** One offload decision point. */
class OffloadPolicy
{
  public:
    virtual ~OffloadPolicy() = default;
    virtual const char *name() const = 0;

    /**
     * Pick a side for @p desc. @p costs may be null (HostOnly and
     * AccelAlways never consult it); model-driven policies fall back to
     * Host without an oracle.
     */
    virtual Backend decide(const OpDesc &desc, const CostModel *costs) = 0;
};

/** Never offload: today's behaviour, and the default. */
class HostOnly final : public OffloadPolicy
{
  public:
    const char *name() const override { return "host"; }
    Backend
    decide(const OpDesc &, const CostModel *) override
    {
        return Backend::Host;
    }
};

/** Offload every call the accelerators support. */
class AccelAlways final : public OffloadPolicy
{
  public:
    const char *name() const override { return "accel"; }
    Backend
    decide(const OpDesc &desc, const CostModel *) override
    {
        return desc.accelSupported ? Backend::Accel : Backend::Host;
    }
};

/** Roofline crossover: per call, the modeled-cheaper side wins. */
class CrossoverModel final : public OffloadPolicy
{
  public:
    const char *name() const override { return "crossover"; }
    Backend decide(const OpDesc &desc, const CostModel *costs) override;
};

/**
 * First-N-calls measurement, then a sticky per-kind choice: the first
 * @p calibrationCalls calls of each kind are priced on both sides (and
 * executed wherever the running tally favours); afterwards the
 * accumulated totals fix the kind's side for good. Deterministic: the
 * "measurement" is the cost models, not wall-clock.
 */
class Calibrated final : public OffloadPolicy
{
  public:
    explicit Calibrated(unsigned calibrationCalls = 8)
        : window_(calibrationCalls)
    {
    }

    const char *name() const override { return "calibrated"; }
    Backend decide(const OpDesc &desc, const CostModel *costs) override;

    /** Whether @p kind has left the calibration window. */
    bool sticky(OpKind kind) const;

  private:
    struct KindState
    {
        std::uint64_t calls = 0;
        double hostSeconds = 0.0;
        double accelSeconds = 0.0;
        Backend choice = Backend::Host;
    };

    unsigned window_;
    std::array<KindState, static_cast<std::size_t>(OpKind::kCount)>
        state_{};
};

/**
 * Policy by name: "host", "accel", "crossover", "calibrated". Returns
 * null for anything else.
 */
std::unique_ptr<OffloadPolicy> makePolicy(const std::string &name);

/**
 * Policy from the MEALIB_OFFLOAD_POLICY environment variable; HostOnly
 * when unset, empty or unrecognized.
 */
std::unique_ptr<OffloadPolicy> policyFromEnv();

} // namespace mealib::dispatch

#endif // MEALIB_DISPATCH_POLICY_HH
