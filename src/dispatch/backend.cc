#include "dispatch/backend.hh"

#include <cstdlib>
#include <string>

#include "accel/descriptor.hh"
#include "runtime/event.hh"

namespace mealib::dispatch {

unsigned
fusionWindowFromEnv()
{
    const char *v = std::getenv("MEALIB_FUSION_WINDOW");
    if (v == nullptr || *v == '\0')
        return 1;
    char *end = nullptr;
    const long n = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || n < 1)
        return 1;
    return static_cast<unsigned>(n);
}

Status
RuntimeBackend::mapCall(const OpDesc &desc, accel::OpCall *out) const
{
    if (!desc.accelSupported || !accelerable(desc.kind))
        return Status::error(ErrorCode::InvalidArgument,
                             std::string("backend: ") +
                                 dispatch::name(desc.kind) +
                                 " has no accelerator mapping");
    if (!desc.backendMappable)
        return Status::error(ErrorCode::InvalidArgument,
                             std::string("backend: ") + desc.entry +
                                 " operand layout not COMP-mappable");

    // Fill the COMP's physical bases from the host operand pointers;
    // null pointers keep whatever base the lowering preset (TDL path).
    accel::OpCall call = desc.call;
    accel::OperandRef *slots[5] = {&call.in0, &call.in1, &call.in2,
                                   &call.in3, &call.out};
    for (std::size_t i = 0; i < desc.operands.size(); ++i) {
        const Operand &op = desc.operands[i];
        if (op.host == nullptr)
            continue;
        Addr paddr = 0;
        if (!rt_.tryPhysOf(op.host, &paddr))
            return Status::error(
                ErrorCode::InvalidArgument,
                std::string("backend: ") + desc.entry + " operand " +
                    std::to_string(i) +
                    " is not in accelerator memory");
        slots[i]->base = paddr;
    }
    *out = call;
    return Status();
}

Status
RuntimeBackend::flushPendingLocked()
{
    if (pending_.empty())
        return Status();
    accel::DescriptorProgram prog;
    for (const PendingCall &pc : pending_) {
        if (pc.loop.iterations() > 1)
            prog.addLoop(pc.loop, 2);
        prog.addComp(pc.call);
        prog.addPassEnd();
    }
    const std::uint64_t comps = pending_.size();
    pending_.clear();

    runtime::AccPlanHandle plan = rt_.accPlan(prog);
    runtime::Event ev = rt_.accSubmit(plan);
    ev.wait();
    Status st = completed(ev.state()) ? Status() : ev.status();
    rt_.accDestroy(plan);
    rt_.noteFusion(comps);
    return st;
}

void
RuntimeBackend::sync()
{
    // The flush outcome is dropped here by design: functional results
    // are final either way (the runtime executes eagerly and faults
    // shape cost, not values), and sync() callers have no per-call
    // Status to attach it to.
    std::lock_guard<std::mutex> lock(wmu_);
    flushPendingLocked();
}

Status
RuntimeBackend::execute(const OpDesc &desc)
{
    accel::OpCall call;
    if (Status st = mapCall(desc, &call); !st.ok())
        return st;

    if (window_ <= 1) {
        // Unfused: one program per call, exactly the legacy path.
        accel::DescriptorProgram prog;
        if (desc.loop.iterations() > 1)
            prog.addLoop(desc.loop, 2);
        prog.addComp(call);
        prog.addPassEnd();

        runtime::AccPlanHandle plan = rt_.accPlan(prog);
        runtime::Event ev = rt_.accSubmit(plan);
        ev.wait();
        Status st = completed(ev.state()) ? Status() : ev.status();
        rt_.accDestroy(plan);
        return st;
    }

    // Fused: buffer the call; flush when the home stack changes or the
    // window fills. A buffered call reports success optimistically —
    // its functional result is guaranteed (computed eagerly at flush),
    // only the modeled fault outcome is folded into the flush that
    // carries it.
    const unsigned home = rt_.stackOf(call.out.base);
    std::lock_guard<std::mutex> lock(wmu_);
    if (!pending_.empty() && home != home_) {
        if (Status st = flushPendingLocked(); !st.ok())
            return st;
    }
    home_ = home;
    pending_.push_back({call, desc.loop});
    if (pending_.size() >= window_)
        return flushPendingLocked();
    return Status();
}

} // namespace mealib::dispatch
