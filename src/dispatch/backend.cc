#include "dispatch/backend.hh"

#include <string>

#include "accel/descriptor.hh"
#include "runtime/event.hh"

namespace mealib::dispatch {

Status
RuntimeBackend::execute(const OpDesc &desc)
{
    if (!desc.accelSupported || !accelerable(desc.kind))
        return Status::error(ErrorCode::InvalidArgument,
                             std::string("backend: ") +
                                 dispatch::name(desc.kind) +
                                 " has no accelerator mapping");
    if (!desc.backendMappable)
        return Status::error(ErrorCode::InvalidArgument,
                             std::string("backend: ") + desc.entry +
                                 " operand layout not COMP-mappable");

    // Fill the COMP's physical bases from the host operand pointers;
    // null pointers keep whatever base the lowering preset (TDL path).
    accel::OpCall call = desc.call;
    accel::OperandRef *slots[5] = {&call.in0, &call.in1, &call.in2,
                                   &call.in3, &call.out};
    for (std::size_t i = 0; i < desc.operands.size(); ++i) {
        const Operand &op = desc.operands[i];
        if (op.host == nullptr)
            continue;
        Addr paddr = 0;
        if (!rt_.tryPhysOf(op.host, &paddr))
            return Status::error(
                ErrorCode::InvalidArgument,
                std::string("backend: ") + desc.entry + " operand " +
                    std::to_string(i) +
                    " is not in accelerator memory");
        slots[i]->base = paddr;
    }

    accel::DescriptorProgram prog;
    if (desc.loop.iterations() > 1)
        prog.addLoop(desc.loop, 2);
    prog.addComp(call);
    prog.addPassEnd();

    runtime::AccPlanHandle plan = rt_.accPlan(prog);
    runtime::Event ev = rt_.accSubmit(plan);
    ev.wait();
    Status st = completed(ev.state()) ? Status() : ev.status();
    rt_.accDestroy(plan);
    return st;
}

} // namespace mealib::dispatch
