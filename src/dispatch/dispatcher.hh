/**
 * @file
 * The dispatch seam (docs/DISPATCH.md).
 *
 * Every MKL-compatible entry point, the s2s-rewritten call sites and
 * the evaluation tools lower their calls into an OpDesc and hand it to
 * a Dispatcher. The dispatcher asks its OffloadPolicy for a side,
 * executes — hostFn for the host side, the attached AccelBackend for
 * the accelerator side — falls back to the host when the backend
 * declines or fails (when that is safe), and records telemetry.
 *
 * The process-wide instance (Dispatcher::global()) is configured from
 * MEALIB_OFFLOAD_POLICY and defaults to HostOnly with no backend
 * attached: exactly the legacy behaviour, bit for bit.
 */

#ifndef MEALIB_DISPATCH_DISPATCHER_HH
#define MEALIB_DISPATCH_DISPATCHER_HH

#include <functional>
#include <memory>
#include <mutex>

#include "common/ledger.hh"
#include "common/status.hh"
#include "dispatch/policy.hh"
#include "dispatch/telemetry.hh"

namespace mealib::dispatch {

/**
 * An execution target for accel-decided descriptors. The runtime
 * backend (dispatch/backend.hh) adapts MealibRuntime; tests plug in
 * fakes. execute() must either complete the operation with the same
 * result the host path would produce, or return a non-ok Status having
 * made no externally visible writes.
 */
class AccelBackend
{
  public:
    virtual ~AccelBackend() = default;
    virtual const char *name() const = 0;
    virtual Status execute(const OpDesc &desc) = 0;

    /**
     * Materialize every buffered execution. Backends that batch calls
     * (the runtime backend's fusion window) may return from execute()
     * with work still pending; the dispatcher syncs before any host
     * kernel runs (and on detach), so host code never observes a
     * buffered-but-unexecuted result. Default: no-op.
     */
    virtual void sync() {}

    /**
     * Fraction of the accelerator substrate currently able to take new
     * work, in [0, 1] (selectable stacks / total stacks for the runtime
     * backend: failed and quarantined stacks don't count). The
     * dispatcher divides modeled accelSeconds by this so offload
     * decisions price in a degraded substrate; 0 prices every accel
     * estimate at +inf.
     */
    virtual double healthyFraction() const { return 1.0; }
};

/** Policy-driven host/accelerator dispatch with telemetry. */
class Dispatcher
{
  public:
    /** Starts with HostOnly, no cost model, no backend. */
    Dispatcher();
    explicit Dispatcher(std::unique_ptr<OffloadPolicy> policy);

    /** Swap the decision policy (null resets to HostOnly). */
    void setPolicy(std::unique_ptr<OffloadPolicy> policy);
    OffloadPolicy &policy();

    /** Cost oracle handed to model-driven policies (may be null). */
    void setCostModel(std::shared_ptr<const CostModel> costs);

    /**
     * Attach / detach the accelerator backend. Not owned; the caller
     * must detach before destroying the backend. With no backend, every
     * accel decision falls back to the host (FallbackReason::NoBackend).
     */
    void attachBackend(AccelBackend *backend);
    void detachBackend();
    bool hasBackend() const;

    /**
     * Attach / detach an energy ledger (not owned; detach before
     * destroying it). Each decision and fallback is recorded as a
     * zero-cost note ("dispatch/<kind>/<side>"), so a run's JSON shows
     * where every call went without perturbing the cost totals.
     */
    void attachLedger(EnergyLedger *ledger);
    void detachLedger();

    /**
     * Execute @p desc: ask the policy for a side, then run @p hostFn
     * (host) or the backend (accel). A declined or failed offload
     * reruns @p hostFn when @p desc.rerunSafe; otherwise backend
     * *errors* propagate as MealibError (declines — no backend,
     * unsupported, unmappable — are detected before any execution and
     * always fall back).
     */
    void run(const OpDesc &desc, const std::function<void()> &hostFn);

    /** Copy of the accumulated telemetry. */
    DispatchStats snapshot() const;
    void resetStats();

    /**
     * The default-session dispatcher: used by the MKL-compatible layer
     * and dispatch::ops whenever the calling thread has no dispatcher
     * bound (see currentDispatcher()). Policy from
     * MEALIB_OFFLOAD_POLICY (read once, at first use),
     * RooflineCostModel attached, no backend. A function-local static
     * object, so it is destroyed cleanly at exit (no LSan leak).
     */
    static Dispatcher &global();

  private:
    Backend decideLocked(const OpDesc &desc);

    mutable std::mutex mu_;
    std::unique_ptr<OffloadPolicy> policy_;
    std::shared_ptr<const CostModel> costs_;
    AccelBackend *backend_ = nullptr;
    EnergyLedger *ledger_ = nullptr;
    DispatchStats stats_;
};

/**
 * Bind @p dispatcher as the calling thread's current dispatcher and
 * return the previous binding (null if none). Passing null unbinds.
 * The MKL-compatible shims and dispatch::ops route through
 * currentDispatcher(), so a thread bound to a session's dispatcher
 * routes unmodified legacy calls to that session; unbound threads keep
 * using Dispatcher::global() — exactly the legacy behaviour.
 * `mealib::Session::bind()` wraps this in an RAII guard.
 */
Dispatcher *bindCurrentDispatcher(Dispatcher *dispatcher);

/** The calling thread's dispatcher: its binding, else global(). */
Dispatcher &currentDispatcher();

/** Whether the calling thread has an explicit dispatcher binding. */
bool hasBoundDispatcher();

} // namespace mealib::dispatch

#endif // MEALIB_DISPATCH_DISPATCHER_HH
