/**
 * @file
 * Cost models behind the model-driven offload policies.
 *
 * The per-operation host execution profiles (formerly private to
 * src/mealib/platform.cc) live here so the dispatcher, the eval layer
 * and the benches price host execution identically. RooflineCostModel
 * combines the Haswell roofline CPU model with the MEALib accelerator
 * model (HMC stack) and adds the invocation overhead — cache flush of
 * the input footprint plus the descriptor/START handshake — so the
 * crossover policy reproduces the paper's shape: small calls stay on
 * the host, large memory-bounded calls offload.
 */

#ifndef MEALIB_DISPATCH_MODELS_HH
#define MEALIB_DISPATCH_MODELS_HH

#include <map>
#include <mutex>
#include <tuple>

#include "dispatch/policy.hh"
#include "host/cpu.hh"
#include "hwmodel/profile.hh"

namespace mealib::dispatch {

/** The two host platforms of Table 3. */
enum class HostKind
{
    Haswell, //!< Intel i7-4770K (the baseline MKL host)
    XeonPhi, //!< Xeon Phi 5110P
};

/** The registry profile behind @p host (haswell4770k / xeonphi5110p). */
const hwmodel::MachineProfile &machineFor(HostKind host);

/** The calibration tables now live in the hardware-model registry. */
using HostOpProfile = hwmodel::HostOpEfficiency;

/** Calibration entry for @p kind on @p host. */
HostOpProfile hostOpProfile(HostKind host, accel::AccelKind kind);

/**
 * Full host execution profile of @p call iterated over @p loop —
 * the record host::CpuModel::run() prices.
 */
host::KernelProfile hostKernelProfile(HostKind host,
                                      const accel::OpCall &call,
                                      const accel::LoopSpec &loop);

/** hostKernelProfile() against an explicit machine profile. */
host::KernelProfile hostKernelProfile(const hwmodel::MachineProfile &m,
                                      const accel::OpCall &call,
                                      const accel::LoopSpec &loop);

/**
 * The dispatcher's default cost oracle: Haswell roofline for the host
 * side, the MEALib accelerator model (HMC stack, Table-3 MEALib column)
 * plus invocation overhead for the accelerator side. Estimates are
 * memoized per call shape — policies price the same kernel in a loop
 * thousands of times (CG) and the accelerator model simulates a DRAM
 * trace per estimate.
 */
class RooflineCostModel final : public CostModel
{
  public:
    /** Price against the active machine profile (MEALIB_MACHINE). */
    RooflineCostModel();

    /** Price against an explicit machine profile. @p machine must
     * outlive the model (registry profiles always do). */
    explicit RooflineCostModel(const hwmodel::MachineProfile &machine);

    double hostSeconds(const OpDesc &desc) const override;
    double accelSeconds(const OpDesc &desc) const override;

    /**
     * Amortize the per-invocation overhead (flush + handshake) over a
     * fusion window of @p window calls: with the runtime backend fusing
     * adjacent same-stack calls into one descriptor program, only one
     * invocation is paid per window. The accel memo is keyed by the
     * window, so estimates cached under other windows survive a toggle
     * and are reused when that window returns. @p window < 1 is treated
     * as 1 (no fusion — the exact legacy pricing).
     */
    void setFusionWindow(unsigned window);
    unsigned fusionWindow() const;

    const hwmodel::MachineProfile &machine() const { return machine_; }

    /**
     * Host throughput recalibration factor applied to hostSeconds().
     * 1.0 unless MEALIB_HOST_CALIBRATE is set, in which case a startup
     * streaming microprobe measures the actual machine's bandwidth and
     * scales the modeled host times by measured/modeled (cached per
     * machine profile, so the probe runs once per process). Off by
     * default: the modeled host baseline is part of the pinned pricing
     * (the drift-pin tests assert registry parity).
     */
    double hostCalibrationScale() const { return hostScale_; }

    /** Fixed per-invocation accelerator overhead (descriptor copy +
     * START handshake), excluding the size-dependent cache flush. */
    static constexpr double kHandshakeSeconds =
        hwmodel::kHandshakeSeconds;

  private:
    /** (kind, n, m, k, complex, iterations, fusionWindow). The machine
     * is per-instance, so it needs no key slot. */
    using Key = std::tuple<std::uint8_t, std::uint64_t, std::uint64_t,
                           std::uint64_t, bool, std::uint64_t, unsigned>;
    static Key keyOf(const OpDesc &desc, unsigned window);

    const hwmodel::MachineProfile &machine_;
    host::CpuModel cpu_;
    double hostScale_ = 1.0;
    unsigned fusionWindow_ = 1;
    mutable std::mutex mu_;
    mutable std::map<Key, double> hostCache_;
    mutable std::map<Key, double> accelCache_;
};

} // namespace mealib::dispatch

#endif // MEALIB_DISPATCH_MODELS_HH
