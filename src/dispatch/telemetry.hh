/**
 * @file
 * Per-call dispatch telemetry (docs/DISPATCH.md): how many calls each
 * op kind made, where the policy sent them, how many offloads fell back
 * to the host and why, and how many bytes moved on each side. Exported
 * as JSON by `mealib-run --dispatch-json` and the dispatch bench.
 */

#ifndef MEALIB_DISPATCH_TELEMETRY_HH
#define MEALIB_DISPATCH_TELEMETRY_HH

#include <array>
#include <cstdint>
#include <string>

#include "dispatch/opdesc.hh"

namespace mealib::dispatch {

/** Why an accel-decided call ended up executing on the host anyway. */
enum class FallbackReason : std::uint8_t
{
    None = 0,
    NoBackend,    //!< no accelerator backend attached
    Unsupported,  //!< kind/argument combination has no COMP mapping
    Unmappable,   //!< operands not translatable to physical addresses
    BackendError, //!< submission or execution returned an error
    kCount,
};

/** Printable reason name ("no_backend", ...). */
const char *name(FallbackReason reason);

/** Counters for one op kind. */
struct OpStats
{
    std::uint64_t calls = 0;
    std::uint64_t hostDecisions = 0;  //!< policy said host
    std::uint64_t accelDecisions = 0; //!< policy said accelerator
    std::uint64_t offloaded = 0;      //!< actually ran on a backend
    std::uint64_t fallbacks = 0;      //!< accel decision, host execution
    double flops = 0.0;
    double bytes = 0.0;          //!< modeled DRAM traffic, all calls
    double bytesOffloaded = 0.0; //!< subset executed on the backend
    std::array<std::uint64_t,
               static_cast<std::size_t>(FallbackReason::kCount)>
        fallbackBy{};
};

/** Aggregated dispatcher telemetry; snapshot() returns one of these. */
struct DispatchStats
{
    std::array<OpStats, static_cast<std::size_t>(OpKind::kCount)> byKind{};

    OpStats &
    of(OpKind kind)
    {
        return byKind[static_cast<std::size_t>(kind)];
    }

    const OpStats &
    of(OpKind kind) const
    {
        return byKind[static_cast<std::size_t>(kind)];
    }

    std::uint64_t totalCalls() const;
    std::uint64_t totalOffloaded() const;
    std::uint64_t totalAccelDecisions() const;
    double totalBytes() const;
    double totalBytesOffloaded() const;

    /** Fraction of calls the policy sent to the accelerators. */
    double offloadRatio() const;

    /** Fraction of modeled traffic executed on the backend. */
    double byteOffloadRatio() const;

    /**
     * JSON document: policy name, totals, and one record per op kind
     * that made at least one call (schema in docs/DISPATCH.md).
     */
    std::string toJson(const std::string &policyName) const;
};

} // namespace mealib::dispatch

#endif // MEALIB_DISPATCH_TELEMETRY_HH
