/**
 * @file
 * The unified op-IR of the dispatch core (docs/DISPATCH.md).
 *
 * Every MKL-compatible entry point — the cblas_* / mkl_* / fftwf_*
 * shims in minimkl/compat.cc, the dispatch::ops wrappers the apps call,
 * and the COMP blocks mealib-run executes — lowers into one OpDesc: the
 * operation kind, its dimensions and strides (an accel::OpCall for the
 * Table-1 accelerable kinds), host-side operand pointers and footprints,
 * derived flop/byte counts, and the provenance string of the legacy
 * entry point. The Dispatcher consumes OpDescs and decides, per call,
 * whether the host kernel runs or the operation is submitted to the
 * memory-side accelerators.
 */

#ifndef MEALIB_DISPATCH_OPDESC_HH
#define MEALIB_DISPATCH_OPDESC_HH

#include <array>
#include <cstdint>

#include "accel/ops.hh"
#include "minimkl/fft.hh"
#include "minimkl/sparse.hh"
#include "minimkl/types.hh"

namespace mealib::dispatch {

/**
 * Operation kinds the dispatcher understands. The first seven mirror
 * accel::AccelKind (Table 1) in opcode order and may be offloaded; the
 * rest are compute-bounded library calls that only ever run on the host
 * but still flow through the dispatcher for telemetry and policy
 * accounting (the paper's memory-bound/compute-bound split).
 */
enum class OpKind : std::uint8_t
{
    Axpy = 0,  //!< cblas_saxpy / cblas_saxpby / cblas_caxpy
    Dot,       //!< cblas_sdot / cblas_cdotc_sub
    Gemv,      //!< cblas_sgemv
    Spmv,      //!< mkl_scsrgemv / mkl::scsrmv
    Resample,  //!< dfsInterpolate1D
    Fft,       //!< fftwf_execute
    Transpose, //!< mkl_simatcopy / mkl_somatcopy
    Gemm,      //!< cblas_sgemm (host-only)
    Herk,      //!< cblas_cherk (host-only)
    Trsm,      //!< cblas_ctrsm (host-only)
    Scal,      //!< cblas_sscal (host-only)
    Copy,      //!< cblas_scopy / rank-0 FFTW copy plans (host-only)
    kCount,
};

/** Printable kind name ("axpy", "gemm", ...). */
const char *name(OpKind kind);

/** Whether a Table-1 accelerator exists for @p kind. */
bool accelerable(OpKind kind);

/** The accelerator for an accelerable kind; fatal() otherwise. */
accel::AccelKind accelKindOf(OpKind kind);

/** OpKind for a Table-1 accelerator kind. */
OpKind opKindOf(accel::AccelKind kind);

/** One operand as the host sees it: pointer + byte footprint. */
struct Operand
{
    const void *host = nullptr; //!< host virtual address (may be null)
    std::uint64_t bytes = 0;    //!< span the operation touches
    bool written = false;       //!< out operand vs. read-only
};

/** The op-IR record every entry point lowers into. */
struct OpDesc
{
    OpKind kind = OpKind::Axpy;
    /** Legacy entry point this call came from ("cblas_saxpy", ...). */
    const char *entry = "";

    /**
     * Dimensions, strides and scalars in accel::OpCall form. For
     * accelerable kinds this is a complete COMP parameter block except
     * for the physical base addresses, which the backend fills in by
     * translating the host operand pointers. Host-only kinds use it for
     * n/m/k bookkeeping only.
     */
    accel::OpCall call;
    accel::LoopSpec loop;

    /**
     * Whether the call can be expressed as a Table-1 COMP at all: the
     * kind is accelerable AND the argument combination maps onto the
     * accelerator's conventions (e.g. GEMV offload needs row-major
     * no-transpose real data; a column-major sgemv stays host-side).
     */
    bool accelSupported = false;

    /**
     * Whether the operand layout matches the accelerator's conventions
     * so the backend may actually build a COMP from it. False e.g. for
     * mkl_scsrgemv's 1-based int32 row pointers (the accelerator reads
     * int64 0-based ones): the policy may still *decide* to offload —
     * the decision is what Table 2 prices — but the backend declines
     * and the dispatcher records an unmappable-fallback.
     */
    bool backendMappable = true;

    /**
     * Whether the host kernel may be re-run after a failed offload.
     * False for calls that read their output (axpy with beta != 0,
     * gemv accumulating into y, in-place transpose): re-executing those
     * after a partial accelerator run would double-apply.
     */
    bool rerunSafe = true;

    /** Operands in OpCall slot order: in0, in1, in2, in3, out. */
    std::array<Operand, 5> operands{};

    // Explicit work/traffic for host-only kinds (OpCall::flops() only
    // understands the accelerable kinds). Negative = use the OpCall.
    double flopsOverride = -1.0;
    double bytesOverride = -1.0;

    /** Floating-point work of the whole (looped) call. */
    double flops() const;

    /** DRAM traffic (bytes) of the whole (looped) call. */
    double bytes() const;
};

// --- lowering helpers --------------------------------------------------
//
// One helper per legacy entry point. Each fills dimensions, operand
// spans, provenance and the accel-support verdict; the caller pairs the
// returned OpDesc with a host closure executing the original kernel.

OpDesc lowerSaxpy(std::int64_t n, float a, const float *x,
                  std::int64_t incx, float *y, std::int64_t incy);
OpDesc lowerSaxpby(std::int64_t n, float a, const float *x,
                   std::int64_t incx, float b, float *y,
                   std::int64_t incy);
OpDesc lowerCaxpy(std::int64_t n, mkl::cfloat a, const mkl::cfloat *x,
                  std::int64_t incx, mkl::cfloat *y, std::int64_t incy);
OpDesc lowerSdot(std::int64_t n, const float *x, std::int64_t incx,
                 const float *y, std::int64_t incy, float *result);
OpDesc lowerCdotc(std::int64_t n, const mkl::cfloat *x, std::int64_t incx,
                  const mkl::cfloat *y, std::int64_t incy,
                  mkl::cfloat *result);
OpDesc lowerSgemv(mkl::Order order, mkl::Transpose trans, std::int64_t m,
                  std::int64_t n, float alpha, const float *a,
                  std::int64_t lda, const float *x, std::int64_t incx,
                  float beta, float *y, std::int64_t incy);
/** The classic 1-based mkl_scsrgemv arrays (square matrix). The index
 * layout differs from the accelerator's (int64 0-based rowPtr), so the
 * policy may choose offload but the backend will decline the mapping. */
OpDesc lowerScsrgemv1(std::int64_t rows, const float *a,
                      const std::int32_t *ia, const std::int32_t *ja,
                      const float *x, float *y, bool transposed);
/** CsrMatrix spmv (0-based, int64 rowPtr) — offloadable as-is. */
OpDesc lowerScsrmv(const mkl::CsrMatrix &a, const float *x, float *y);
OpDesc lowerResample(const float *x, std::int64_t nx, float *site,
                     std::int64_t nsite);
OpDesc lowerTranspose(std::int64_t rows, std::int64_t cols, float alpha,
                      const float *a, float *b, bool complexData,
                      bool mappable);
OpDesc lowerFft(const mkl::FftPlan &plan, const mkl::cfloat *in,
                mkl::cfloat *out);

// Host-only kinds (the paper's compute-bounded calls).
OpDesc lowerSgemm(std::int64_t m, std::int64_t n, std::int64_t k,
                  const float *a, const float *b, float beta, float *c);
OpDesc lowerCherk(std::int64_t n, std::int64_t k, const mkl::cfloat *a,
                  float beta, mkl::cfloat *c);
OpDesc lowerCtrsm(std::int64_t m, std::int64_t n, const mkl::cfloat *a,
                  mkl::cfloat *b);
OpDesc lowerSscal(std::int64_t n, const float *x, std::int64_t incx);
OpDesc lowerScopy(std::int64_t n, const float *x, std::int64_t incx,
                  float *y, std::int64_t incy);

/**
 * OpDesc for a COMP already expressed as an OpCall (mealib-run's TDL
 * path): physical bases are preset in @p call, host pointers stay null
 * and the backend keeps the preset addresses.
 */
OpDesc opDescFromCall(const accel::OpCall &call,
                      const accel::LoopSpec &loop);

} // namespace mealib::dispatch

#endif // MEALIB_DISPATCH_OPDESC_HH
