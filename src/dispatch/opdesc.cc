#include "dispatch/opdesc.hh"

#include <algorithm>

#include "common/logging.hh"
#include "minimkl/resample.hh"

namespace mealib::dispatch {

using accel::AccelKind;
using mkl::cfloat;

const char *
name(OpKind kind)
{
    switch (kind) {
      case OpKind::Axpy:
        return "axpy";
      case OpKind::Dot:
        return "dot";
      case OpKind::Gemv:
        return "gemv";
      case OpKind::Spmv:
        return "spmv";
      case OpKind::Resample:
        return "resample";
      case OpKind::Fft:
        return "fft";
      case OpKind::Transpose:
        return "transpose";
      case OpKind::Gemm:
        return "gemm";
      case OpKind::Herk:
        return "herk";
      case OpKind::Trsm:
        return "trsm";
      case OpKind::Scal:
        return "scal";
      case OpKind::Copy:
        return "copy";
      default:
        panic("name: bad OpKind");
    }
}

bool
accelerable(OpKind kind)
{
    return static_cast<std::uint8_t>(kind) <
           static_cast<std::uint8_t>(AccelKind::kCount);
}

accel::AccelKind
accelKindOf(OpKind kind)
{
    fatalIf(!accelerable(kind), "accelKindOf: ", name(kind),
            " has no accelerator");
    return static_cast<AccelKind>(kind);
}

OpKind
opKindOf(accel::AccelKind kind)
{
    return static_cast<OpKind>(kind);
}

double
OpDesc::flops() const
{
    if (flopsOverride >= 0.0)
        return flopsOverride;
    return call.flops() * static_cast<double>(loop.iterations());
}

double
OpDesc::bytes() const
{
    if (bytesOverride >= 0.0)
        return bytesOverride;
    return accel::loopedTrafficBytes(call, loop);
}

namespace {

/** Bytes a strided vector of @p n elements spans. */
std::uint64_t
spanBytes(std::int64_t n, std::int64_t inc, std::uint64_t elem)
{
    if (n <= 0)
        return 0;
    std::uint64_t mag = static_cast<std::uint64_t>(inc < 0 ? -inc : inc);
    return (1 + static_cast<std::uint64_t>(n - 1) * mag) * elem;
}

OpDesc
axpyCommon(const char *entry, std::int64_t n, float alpha, float beta,
           bool complexData, const void *x, std::int64_t incx, void *y,
           std::int64_t incy)
{
    const std::uint64_t es = complexData ? 8 : 4;
    OpDesc d;
    d.kind = OpKind::Axpy;
    d.entry = entry;
    d.call.kind = AccelKind::AXPY;
    d.call.n = n > 0 ? static_cast<std::uint64_t>(n) : 0;
    d.call.inc0 = incx;
    d.call.inc1 = incy;
    d.call.alpha = alpha;
    d.call.beta = beta;
    d.call.complexData = complexData;
    d.operands[0] = {x, spanBytes(n, incx, es), false};
    d.operands[4] = {y, spanBytes(n, incy, es), true};
    d.accelSupported = n > 0;
    // beta != 0 reads y: re-running the host kernel after a partial
    // accelerator attempt would double-apply the update.
    d.rerunSafe = !complexData && beta == 0.0f;
    return d;
}

} // namespace

OpDesc
lowerSaxpy(std::int64_t n, float a, const float *x, std::int64_t incx,
           float *y, std::int64_t incy)
{
    return axpyCommon("cblas_saxpy", n, a, 1.0f, false, x, incx, y,
                      incy);
}

OpDesc
lowerSaxpby(std::int64_t n, float a, const float *x, std::int64_t incx,
            float b, float *y, std::int64_t incy)
{
    return axpyCommon("cblas_saxpby", n, a, b, false, x, incx, y, incy);
}

OpDesc
lowerCaxpy(std::int64_t n, cfloat a, const cfloat *x, std::int64_t incx,
           cfloat *y, std::int64_t incy)
{
    // The AXPY accelerator packs a complex scalar as (alpha, beta).
    OpDesc d = axpyCommon("cblas_caxpy", n, a.real(), a.imag(), true, x,
                          incx, y, incy);
    return d;
}

OpDesc
lowerSdot(std::int64_t n, const float *x, std::int64_t incx,
          const float *y, std::int64_t incy, float *result)
{
    OpDesc d;
    d.kind = OpKind::Dot;
    d.entry = "cblas_sdot";
    d.call.kind = AccelKind::DOT;
    d.call.n = n > 0 ? static_cast<std::uint64_t>(n) : 0;
    d.call.inc0 = incx;
    d.call.inc1 = incy;
    d.operands[0] = {x, spanBytes(n, incx, 4), false};
    d.operands[1] = {y, spanBytes(n, incy, 4), false};
    d.operands[4] = {result, 4, true};
    d.accelSupported = n > 0;
    return d;
}

OpDesc
lowerCdotc(std::int64_t n, const cfloat *x, std::int64_t incx,
           const cfloat *y, std::int64_t incy, cfloat *result)
{
    OpDesc d;
    d.kind = OpKind::Dot;
    d.entry = "cblas_cdotc_sub";
    d.call.kind = AccelKind::DOT;
    d.call.n = n > 0 ? static_cast<std::uint64_t>(n) : 0;
    d.call.inc0 = incx;
    d.call.inc1 = incy;
    d.call.complexData = true;
    d.call.conjugate = true;
    d.operands[0] = {x, spanBytes(n, incx, 8), false};
    d.operands[1] = {y, spanBytes(n, incy, 8), false};
    d.operands[4] = {result, 8, true};
    d.accelSupported = n > 0;
    return d;
}

OpDesc
lowerSgemv(mkl::Order order, mkl::Transpose trans, std::int64_t m,
           std::int64_t n, float alpha, const float *a, std::int64_t lda,
           const float *x, std::int64_t incx, float beta, float *y,
           std::int64_t incy)
{
    const bool noTrans =
        order == mkl::Order::RowMajor && trans == mkl::Transpose::NoTrans;
    const std::int64_t xlen = noTrans ? n : m;
    const std::int64_t ylen = noTrans ? m : n;

    OpDesc d;
    d.kind = OpKind::Gemv;
    d.entry = "cblas_sgemv";
    d.call.kind = AccelKind::GEMV;
    d.call.m = ylen > 0 ? static_cast<std::uint64_t>(ylen) : 0;
    d.call.n = xlen > 0 ? static_cast<std::uint64_t>(xlen) : 0;
    d.call.inc0 = incx;
    d.call.alpha = alpha;
    d.call.beta = beta;
    const std::uint64_t abytes =
        m > 0 && n > 0
            ? static_cast<std::uint64_t>(
                  (order == mkl::Order::RowMajor ? m : n)) *
                  static_cast<std::uint64_t>(lda) * 4
            : 0;
    d.operands[0] = {a, abytes, false};
    d.operands[1] = {x, spanBytes(xlen, incx, 4), false};
    d.operands[4] = {y, spanBytes(ylen, incy, 4), true};
    // The GEMV accelerator implements the row-major no-transpose walk
    // with a packed matrix and unit-stride y (accel/layer.cc).
    d.accelSupported =
        noTrans && m > 0 && n > 0 && lda == n && incy == 1;
    d.rerunSafe = beta == 0.0f;
    return d;
}

OpDesc
lowerScsrgemv1(std::int64_t rows, const float *a, const std::int32_t *ia,
               const std::int32_t *ja, const float *x, float *y,
               bool transposed)
{
    const std::int64_t nnz =
        ia != nullptr && rows > 0 ? ia[rows] - 1 : 0;
    OpDesc d;
    d.kind = OpKind::Spmv;
    d.entry = "mkl_scsrgemv";
    d.call.kind = AccelKind::SPMV;
    d.call.m = rows > 0 ? static_cast<std::uint64_t>(rows) : 0;
    d.call.n = d.call.m;
    d.call.k = nnz > 0 ? static_cast<std::uint64_t>(nnz) : 0;
    d.operands[0] = {ia, static_cast<std::uint64_t>(rows + 1) * 4,
                     false};
    d.operands[1] = {ja, static_cast<std::uint64_t>(nnz) * 4, false};
    d.operands[2] = {a, static_cast<std::uint64_t>(nnz) * 4, false};
    d.operands[3] = {x, static_cast<std::uint64_t>(rows) * 4, false};
    d.operands[4] = {y, static_cast<std::uint64_t>(rows) * 4, true};
    d.accelSupported = rows > 0 && nnz > 0 && !transposed;
    // Classic 1-based int32 row pointers: the SPMV accelerator consumes
    // int64 0-based ones, so the backend cannot map these arrays.
    d.backendMappable = false;
    return d;
}

OpDesc
lowerScsrmv(const mkl::CsrMatrix &a, const float *x, float *y)
{
    OpDesc d;
    d.kind = OpKind::Spmv;
    d.entry = "mkl::scsrmv";
    d.call.kind = AccelKind::SPMV;
    d.call.m = static_cast<std::uint64_t>(a.rows);
    d.call.n = static_cast<std::uint64_t>(a.cols);
    d.call.k = static_cast<std::uint64_t>(a.nnz());
    d.operands[0] = {a.rowPtr.data(),
                     static_cast<std::uint64_t>(a.rows + 1) * 8, false};
    d.operands[1] = {a.colIdx.data(),
                     static_cast<std::uint64_t>(a.nnz()) * 4, false};
    d.operands[2] = {a.vals.data(),
                     static_cast<std::uint64_t>(a.nnz()) * 4, false};
    d.operands[3] = {x, static_cast<std::uint64_t>(a.cols) * 4, false};
    d.operands[4] = {y, static_cast<std::uint64_t>(a.rows) * 4, true};
    d.accelSupported = a.rows > 0 && a.nnz() > 0;
    return d;
}

OpDesc
lowerResample(const float *x, std::int64_t nx, float *site,
              std::int64_t nsite)
{
    OpDesc d;
    d.kind = OpKind::Resample;
    d.entry = "dfsInterpolate1D";
    d.call.kind = AccelKind::RESMP;
    d.call.n = nx > 0 ? static_cast<std::uint64_t>(nx) : 0;
    d.call.m = nsite > 0 ? static_cast<std::uint64_t>(nsite) : 0;
    d.call.resampleKind =
        static_cast<std::uint32_t>(mkl::InterpKind::Linear);
    d.operands[0] = {x, static_cast<std::uint64_t>(nx) * 4, false};
    d.operands[4] = {site, static_cast<std::uint64_t>(nsite) * 4, true};
    d.accelSupported = nx > 0 && nsite > 0;
    return d;
}

OpDesc
lowerTranspose(std::int64_t rows, std::int64_t cols, float alpha,
               const float *a, float *b, bool complexData, bool mappable)
{
    const std::uint64_t es = complexData ? 8 : 4;
    const bool inPlace = static_cast<const void *>(a) == b;
    OpDesc d;
    d.kind = OpKind::Transpose;
    d.entry = inPlace ? "mkl_simatcopy" : "mkl_somatcopy";
    d.call.kind = AccelKind::RESHP;
    d.call.m = rows > 0 ? static_cast<std::uint64_t>(rows) : 0;
    d.call.n = cols > 0 ? static_cast<std::uint64_t>(cols) : 0;
    d.call.alpha = alpha;
    d.call.complexData = complexData;
    const std::uint64_t bytes = d.call.m * d.call.n * es;
    d.operands[0] = {a, bytes, false};
    d.operands[4] = {b, bytes, true};
    d.accelSupported = mappable && rows > 0 && cols > 0;
    d.rerunSafe = !inPlace;
    return d;
}

OpDesc
lowerFft(const mkl::FftPlan &plan, const cfloat *in, cfloat *out)
{
    OpDesc d;
    d.entry = "fftwf_execute";
    const std::uint64_t batch =
        static_cast<std::uint64_t>(plan.batchCount());
    const std::uint64_t pts =
        static_cast<std::uint64_t>(plan.transformPoints());
    if (plan.isCopy()) {
        // Rank-0 guru plans are pure strided data motion; MEALib maps
        // those to RESHP, but the copy geometry lives in the loop
        // strides, so we account them as host-side copies here.
        d.kind = OpKind::Copy;
        d.flopsOverride = 0.0;
        d.bytesOverride = static_cast<double>(batch) * 16.0;
        d.operands[0] = {in, batch * 8, false};
        d.operands[4] = {out, batch * 8, true};
        d.rerunSafe = in != out;
        return d;
    }
    d.kind = OpKind::Fft;
    d.call.kind = AccelKind::FFT;
    d.call.complexData = true;
    d.call.fftDir =
        plan.direction() == mkl::FftDirection::Forward ? -1 : 1;
    const auto &dims = plan.dims();
    if (dims.size() == 2) {
        d.call.k = static_cast<std::uint64_t>(dims[0].n);
        d.call.n = static_cast<std::uint64_t>(dims[1].n);
    } else {
        d.call.n = pts;
        d.call.k = 0;
    }
    d.call.m = batch;
    const std::uint64_t bytes = pts * batch * 8;
    d.operands[0] = {in, bytes, false};
    d.operands[4] = {out, bytes, true};
    // The FFT accelerator assumes contiguous transforms with the batch
    // laid out at a `pts` distance (accel/layer.cc).
    d.accelSupported = !dims.empty() && dims.back().is == 1 &&
                       dims.back().os == 1;
    d.rerunSafe = in != out;
    return d;
}

OpDesc
lowerSgemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const float *a, const float *b, float beta, float *c)
{
    OpDesc d;
    d.kind = OpKind::Gemm;
    d.entry = "cblas_sgemm";
    d.call.n = n > 0 ? static_cast<std::uint64_t>(n) : 0;
    d.call.m = m > 0 ? static_cast<std::uint64_t>(m) : 0;
    d.call.k = k > 0 ? static_cast<std::uint64_t>(k) : 0;
    d.flopsOverride = 2.0 * static_cast<double>(m) *
                      static_cast<double>(n) * static_cast<double>(k);
    d.bytesOverride =
        4.0 * (static_cast<double>(m) * static_cast<double>(k) +
               static_cast<double>(k) * static_cast<double>(n) +
               2.0 * static_cast<double>(m) * static_cast<double>(n));
    d.operands[0] = {a, static_cast<std::uint64_t>(m * k) * 4, false};
    d.operands[1] = {b, static_cast<std::uint64_t>(k * n) * 4, false};
    d.operands[4] = {c, static_cast<std::uint64_t>(m * n) * 4, true};
    d.rerunSafe = beta == 0.0f;
    return d;
}

OpDesc
lowerCherk(std::int64_t n, std::int64_t k, const cfloat *a, float beta,
           cfloat *c)
{
    OpDesc d;
    d.kind = OpKind::Herk;
    d.entry = "cblas_cherk";
    d.call.n = n > 0 ? static_cast<std::uint64_t>(n) : 0;
    d.call.k = k > 0 ? static_cast<std::uint64_t>(k) : 0;
    // Half the n x n result is computed; 8 flops per complex MAC.
    d.flopsOverride = 4.0 * static_cast<double>(n) *
                      static_cast<double>(n) * static_cast<double>(k);
    d.bytesOverride =
        8.0 * (static_cast<double>(n) * static_cast<double>(k) +
               static_cast<double>(n) * static_cast<double>(n));
    d.operands[0] = {a, static_cast<std::uint64_t>(n * k) * 8, false};
    d.operands[4] = {c, static_cast<std::uint64_t>(n * n) * 8, true};
    d.rerunSafe = beta == 0.0f;
    return d;
}

OpDesc
lowerCtrsm(std::int64_t m, std::int64_t n, const cfloat *a, cfloat *b)
{
    OpDesc d;
    d.kind = OpKind::Trsm;
    d.entry = "cblas_ctrsm";
    d.call.m = m > 0 ? static_cast<std::uint64_t>(m) : 0;
    d.call.n = n > 0 ? static_cast<std::uint64_t>(n) : 0;
    d.flopsOverride = 4.0 * static_cast<double>(m) *
                      static_cast<double>(m) * static_cast<double>(n);
    d.bytesOverride =
        8.0 * (0.5 * static_cast<double>(m) * static_cast<double>(m) +
               2.0 * static_cast<double>(m) * static_cast<double>(n));
    d.operands[0] = {a, static_cast<std::uint64_t>(m * m) * 8, false};
    d.operands[4] = {b, static_cast<std::uint64_t>(m * n) * 8, true};
    d.rerunSafe = false; // solves in place
    return d;
}

OpDesc
lowerSscal(std::int64_t n, const float *x, std::int64_t incx)
{
    OpDesc d;
    d.kind = OpKind::Scal;
    d.entry = "cblas_sscal";
    d.call.n = n > 0 ? static_cast<std::uint64_t>(n) : 0;
    d.flopsOverride = static_cast<double>(n > 0 ? n : 0);
    d.bytesOverride = 8.0 * static_cast<double>(n > 0 ? n : 0);
    d.operands[4] = {x, spanBytes(n, incx, 4), true};
    d.rerunSafe = false; // scales in place
    return d;
}

OpDesc
lowerScopy(std::int64_t n, const float *x, std::int64_t incx, float *y,
           std::int64_t incy)
{
    OpDesc d;
    d.kind = OpKind::Copy;
    d.entry = "cblas_scopy";
    d.call.n = n > 0 ? static_cast<std::uint64_t>(n) : 0;
    d.flopsOverride = 0.0;
    d.bytesOverride = 8.0 * static_cast<double>(n > 0 ? n : 0);
    d.operands[0] = {x, spanBytes(n, incx, 4), false};
    d.operands[4] = {y, spanBytes(n, incy, 4), true};
    return d;
}

OpDesc
opDescFromCall(const accel::OpCall &call, const accel::LoopSpec &loop)
{
    OpDesc d;
    d.kind = opKindOf(call.kind);
    d.entry = "tdl";
    d.call = call;
    d.loop = loop;
    d.accelSupported = true;
    // Physical bases are preset; the host never re-runs TDL comps.
    d.rerunSafe = false;
    return d;
}

} // namespace mealib::dispatch
