#include "dispatch/dispatcher.hh"

#include <limits>

#include "dispatch/models.hh"

namespace mealib::dispatch {

namespace {

/**
 * Cost adapter for a partially degraded accelerator substrate: with
 * only a fraction of the stacks selectable, per-call accelerator
 * throughput shrinks proportionally (commands queue behind each other
 * on the survivors), so modeled accelSeconds is divided by the healthy
 * fraction before the policy compares sides.
 */
class DegradedCosts final : public CostModel
{
  public:
    DegradedCosts(const CostModel &base, double healthyFraction)
        : base_(base), frac_(healthyFraction)
    {
    }

    double
    hostSeconds(const OpDesc &desc) const override
    {
        return base_.hostSeconds(desc);
    }

    double
    accelSeconds(const OpDesc &desc) const override
    {
        if (frac_ <= 0.0)
            return std::numeric_limits<double>::infinity();
        return base_.accelSeconds(desc) / frac_;
    }

  private:
    const CostModel &base_;
    double frac_;
};

} // namespace

Dispatcher::Dispatcher() : policy_(std::make_unique<HostOnly>()) {}

Dispatcher::Dispatcher(std::unique_ptr<OffloadPolicy> policy)
    : policy_(policy ? std::move(policy)
                     : std::make_unique<HostOnly>())
{
}

void
Dispatcher::setPolicy(std::unique_ptr<OffloadPolicy> policy)
{
    std::lock_guard<std::mutex> lock(mu_);
    policy_ = policy ? std::move(policy) : std::make_unique<HostOnly>();
}

OffloadPolicy &
Dispatcher::policy()
{
    std::lock_guard<std::mutex> lock(mu_);
    return *policy_;
}

void
Dispatcher::setCostModel(std::shared_ptr<const CostModel> costs)
{
    std::lock_guard<std::mutex> lock(mu_);
    costs_ = std::move(costs);
}

void
Dispatcher::attachBackend(AccelBackend *backend)
{
    std::lock_guard<std::mutex> lock(mu_);
    backend_ = backend;
}

void
Dispatcher::detachBackend()
{
    AccelBackend *backend;
    {
        std::lock_guard<std::mutex> lock(mu_);
        backend = backend_;
        backend_ = nullptr;
    }
    // Flush any batched work outside the lock so the backend may call
    // back into attached ledgers without deadlocking.
    if (backend != nullptr)
        backend->sync();
}

bool
Dispatcher::hasBackend() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return backend_ != nullptr;
}

void
Dispatcher::attachLedger(EnergyLedger *ledger)
{
    std::lock_guard<std::mutex> lock(mu_);
    ledger_ = ledger;
}

void
Dispatcher::detachLedger()
{
    std::lock_guard<std::mutex> lock(mu_);
    ledger_ = nullptr;
}

Backend
Dispatcher::decideLocked(const OpDesc &desc)
{
    const CostModel *costs = costs_.get();
    if (costs != nullptr && backend_ != nullptr) {
        const double frac = backend_->healthyFraction();
        if (frac < 1.0) {
            DegradedCosts adapted(*costs, frac);
            return policy_->decide(desc, &adapted);
        }
    }
    return policy_->decide(desc, costs);
}

void
Dispatcher::run(const OpDesc &desc, const std::function<void()> &hostFn)
{
    Backend side;
    AccelBackend *backend;
    {
        std::lock_guard<std::mutex> lock(mu_);
        side = decideLocked(desc);
        backend = backend_;

        OpStats &s = stats_.of(desc.kind);
        s.calls++;
        s.flops += desc.flops();
        s.bytes += desc.bytes();
        if (side == Backend::Accel)
            s.accelDecisions++;
        else
            s.hostDecisions++;
        if (ledger_ != nullptr)
            ledger_->note(std::string("dispatch/") + name(desc.kind) +
                          "/" + name(side));
    }

    if (side == Backend::Host) {
        // Host code may read results a batching backend still buffers.
        if (backend != nullptr)
            backend->sync();
        hostFn();
        return;
    }

    // Accel decision: pre-execution declines always fall back (nothing
    // has run yet, so the host path is trivially safe).
    FallbackReason reason = FallbackReason::None;
    if (backend == nullptr)
        reason = FallbackReason::NoBackend;
    else if (!desc.accelSupported)
        reason = FallbackReason::Unsupported;
    else if (!desc.backendMappable)
        reason = FallbackReason::Unmappable;

    if (reason == FallbackReason::None) {
        Status st = backend->execute(desc);
        if (st.ok()) {
            std::lock_guard<std::mutex> lock(mu_);
            OpStats &s = stats_.of(desc.kind);
            s.offloaded++;
            s.bytesOffloaded += desc.bytes();
            return;
        }
        // The backend may have partially executed; rerunning the host
        // path is only correct when the op does not read what it
        // writes (rerunSafe). Otherwise surface the error.
        if (!desc.rerunSafe) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                OpStats &s = stats_.of(desc.kind);
                s.fallbacks++;
                s.fallbackBy[static_cast<std::size_t>(
                    FallbackReason::BackendError)]++;
            }
            throw MealibError(st);
        }
        reason = FallbackReason::BackendError;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        OpStats &s = stats_.of(desc.kind);
        s.fallbacks++;
        s.fallbackBy[static_cast<std::size_t>(reason)]++;
        if (ledger_ != nullptr)
            ledger_->note(std::string("dispatch/") + name(desc.kind) +
                          "/fallback");
    }
    if (backend != nullptr)
        backend->sync();
    hostFn();
}

DispatchStats
Dispatcher::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
Dispatcher::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DispatchStats{};
}

Dispatcher &
Dispatcher::global()
{
    // Function-local static *object* (not a leaked pointer): it is
    // destroyed at exit in reverse order of construction, after any
    // later-constructed session dispatchers, so LSan sees no leak once
    // telemetry holds allocations.
    struct GlobalDispatcher
    {
        Dispatcher d;
        GlobalDispatcher() : d(policyFromEnv())
        {
            d.setCostModel(std::make_shared<RooflineCostModel>());
        }
    };
    static GlobalDispatcher instance;
    return instance.d;
}

namespace {
/** The thread's bound dispatcher; null routes to Dispatcher::global(). */
thread_local Dispatcher *tlDispatcher = nullptr;
} // namespace

Dispatcher *
bindCurrentDispatcher(Dispatcher *dispatcher)
{
    Dispatcher *previous = tlDispatcher;
    tlDispatcher = dispatcher;
    return previous;
}

Dispatcher &
currentDispatcher()
{
    return tlDispatcher != nullptr ? *tlDispatcher : Dispatcher::global();
}

bool
hasBoundDispatcher()
{
    return tlDispatcher != nullptr;
}

} // namespace mealib::dispatch
