#include "dispatch/dispatcher.hh"

#include "dispatch/models.hh"

namespace mealib::dispatch {

Dispatcher::Dispatcher() : policy_(std::make_unique<HostOnly>()) {}

Dispatcher::Dispatcher(std::unique_ptr<OffloadPolicy> policy)
    : policy_(policy ? std::move(policy)
                     : std::make_unique<HostOnly>())
{
}

void
Dispatcher::setPolicy(std::unique_ptr<OffloadPolicy> policy)
{
    std::lock_guard<std::mutex> lock(mu_);
    policy_ = policy ? std::move(policy) : std::make_unique<HostOnly>();
}

OffloadPolicy &
Dispatcher::policy()
{
    std::lock_guard<std::mutex> lock(mu_);
    return *policy_;
}

void
Dispatcher::setCostModel(std::shared_ptr<const CostModel> costs)
{
    std::lock_guard<std::mutex> lock(mu_);
    costs_ = std::move(costs);
}

void
Dispatcher::attachBackend(AccelBackend *backend)
{
    std::lock_guard<std::mutex> lock(mu_);
    backend_ = backend;
}

void
Dispatcher::detachBackend()
{
    std::lock_guard<std::mutex> lock(mu_);
    backend_ = nullptr;
}

bool
Dispatcher::hasBackend() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return backend_ != nullptr;
}

void
Dispatcher::attachLedger(EnergyLedger *ledger)
{
    std::lock_guard<std::mutex> lock(mu_);
    ledger_ = ledger;
}

void
Dispatcher::detachLedger()
{
    std::lock_guard<std::mutex> lock(mu_);
    ledger_ = nullptr;
}

Backend
Dispatcher::decideLocked(const OpDesc &desc)
{
    return policy_->decide(desc, costs_.get());
}

void
Dispatcher::run(const OpDesc &desc, const std::function<void()> &hostFn)
{
    Backend side;
    AccelBackend *backend;
    {
        std::lock_guard<std::mutex> lock(mu_);
        side = decideLocked(desc);
        backend = backend_;

        OpStats &s = stats_.of(desc.kind);
        s.calls++;
        s.flops += desc.flops();
        s.bytes += desc.bytes();
        if (side == Backend::Accel)
            s.accelDecisions++;
        else
            s.hostDecisions++;
        if (ledger_ != nullptr)
            ledger_->note(std::string("dispatch/") + name(desc.kind) +
                          "/" + name(side));
    }

    if (side == Backend::Host) {
        hostFn();
        return;
    }

    // Accel decision: pre-execution declines always fall back (nothing
    // has run yet, so the host path is trivially safe).
    FallbackReason reason = FallbackReason::None;
    if (backend == nullptr)
        reason = FallbackReason::NoBackend;
    else if (!desc.accelSupported)
        reason = FallbackReason::Unsupported;
    else if (!desc.backendMappable)
        reason = FallbackReason::Unmappable;

    if (reason == FallbackReason::None) {
        Status st = backend->execute(desc);
        if (st.ok()) {
            std::lock_guard<std::mutex> lock(mu_);
            OpStats &s = stats_.of(desc.kind);
            s.offloaded++;
            s.bytesOffloaded += desc.bytes();
            return;
        }
        // The backend may have partially executed; rerunning the host
        // path is only correct when the op does not read what it
        // writes (rerunSafe). Otherwise surface the error.
        if (!desc.rerunSafe) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                OpStats &s = stats_.of(desc.kind);
                s.fallbacks++;
                s.fallbackBy[static_cast<std::size_t>(
                    FallbackReason::BackendError)]++;
            }
            throw MealibError(st);
        }
        reason = FallbackReason::BackendError;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        OpStats &s = stats_.of(desc.kind);
        s.fallbacks++;
        s.fallbackBy[static_cast<std::size_t>(reason)]++;
        if (ledger_ != nullptr)
            ledger_->note(std::string("dispatch/") + name(desc.kind) +
                          "/fallback");
    }
    hostFn();
}

DispatchStats
Dispatcher::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
Dispatcher::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DispatchStats{};
}

Dispatcher &
Dispatcher::global()
{
    static Dispatcher *instance = [] {
        auto *d = new Dispatcher(policyFromEnv());
        d->setCostModel(std::make_shared<RooflineCostModel>());
        return d;
    }();
    return *instance;
}

} // namespace mealib::dispatch
