#include "dispatch/policy.hh"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/logging.hh"

namespace mealib::dispatch {

const char *
name(Backend backend)
{
    return backend == Backend::Host ? "host" : "accel";
}

Backend
CrossoverModel::decide(const OpDesc &desc, const CostModel *costs)
{
    if (!desc.accelSupported || costs == nullptr)
        return Backend::Host;
    double host = costs->hostSeconds(desc);
    double accel = costs->accelSeconds(desc);
    return accel < host ? Backend::Accel : Backend::Host;
}

Backend
Calibrated::decide(const OpDesc &desc, const CostModel *costs)
{
    KindState &ks = state_[static_cast<std::size_t>(desc.kind)];
    if (!desc.accelSupported || costs == nullptr)
        return Backend::Host;
    if (ks.calls >= window_)
        return ks.choice;

    ks.calls++;
    ks.hostSeconds += costs->hostSeconds(desc);
    double accel = costs->accelSeconds(desc);
    ks.accelSeconds += std::isfinite(accel)
                           ? accel
                           : std::numeric_limits<double>::max() / 1e6;
    ks.choice = ks.accelSeconds < ks.hostSeconds ? Backend::Accel
                                                 : Backend::Host;
    // During calibration, follow the running tally.
    return ks.choice;
}

bool
Calibrated::sticky(OpKind kind) const
{
    return state_[static_cast<std::size_t>(kind)].calls >= window_;
}

std::unique_ptr<OffloadPolicy>
makePolicy(const std::string &name)
{
    if (name == "host")
        return std::make_unique<HostOnly>();
    if (name == "accel")
        return std::make_unique<AccelAlways>();
    if (name == "crossover")
        return std::make_unique<CrossoverModel>();
    if (name == "calibrated")
        return std::make_unique<Calibrated>();
    return nullptr;
}

std::unique_ptr<OffloadPolicy>
policyFromEnv()
{
    const char *env = std::getenv("MEALIB_OFFLOAD_POLICY");
    if (env != nullptr && *env != '\0') {
        auto policy = makePolicy(env);
        if (policy)
            return policy;
        warn("MEALIB_OFFLOAD_POLICY='", env,
             "' not recognized; using host-only dispatch");
    }
    return std::make_unique<HostOnly>();
}

} // namespace mealib::dispatch
