// The Table 3/5 and CACTI-3DD constants of the reproduction, defined
// exactly once (docs/MODEL.md). The per-module preset factories
// (dram::hmcStack, host::haswell4770k, noc::mealibMesh,
// accel::defaultConfig/synthesis) forward to these builders.

#include "hwmodel/profile.hh"

#include "common/logging.hh"

namespace mealib::hwmodel {

dram::DramParams
hmcStackParams()
{
    dram::DramParams p;
    p.name = "hmc-3d-stack";

    // 32 vaults x ~16 GB/s per vault = 512 GB/s aggregate internal
    // bandwidth (the paper's Table 3 quotes 510 GB/s). Per-vault TSV bus
    // moves a 32 B burst in 2 cycles at 1.0 GHz.
    p.timing.tCK = 1.0 / 1.0_GHz;
    p.timing.tRCD = 14;
    p.timing.tCAS = 14;
    p.timing.tRP = 14;
    p.timing.tRAS = 34;
    p.timing.tWR = 15;
    p.timing.tBURST = 2;
    p.timing.burstBytes = 32;
    p.timing.tREFI = 3900; // 3.9 us at 1 GHz (fine-grained 3D refresh)
    p.timing.tRFC = 60;

    // CACTI-3DD-style estimates for a 32 nm 3D part: small rows make
    // activates cheap; TSVs are far cheaper than off-chip I/O.
    p.energy.activateJ = 0.7_nJ;
    p.energy.readJPerByte = 4.0_pJ;
    p.energy.writeJPerByte = 4.4_pJ;
    p.energy.tsvJPerByte = 0.8_pJ;
    p.energy.backgroundWPerVault = 0.055;
    p.energy.refreshJPerVault = 8.0_nJ;

    p.org.numVaults = 32;
    p.org.banksPerVault = 8;
    p.org.rowBytes = 256;
    p.org.interleaveBytes = 32;
    p.org.capacityBytes = 4_GiB;
    p.org.linkBandwidth = 120.0_GBps; // 4 half-width HMC links

    return p;
}

dram::DramParams
ddr3Params(unsigned channels)
{
    dram::DramParams p;
    p.name = "ddr3-1600-x" + std::to_string(channels);

    // DDR3-1600: 800 MHz bus clock, 64 B cache-line burst (BL8 on a
    // 64-bit channel) occupies 4 bus cycles.
    p.timing.tCK = 1.0 / 0.8_GHz;
    p.timing.tRCD = 11;
    p.timing.tCAS = 11;
    p.timing.tRP = 11;
    p.timing.tRAS = 28;
    p.timing.tWR = 12;
    p.timing.tBURST = 4;
    p.timing.burstBytes = 64;
    p.timing.tREFI = 6240; // 7.8 us at 800 MHz
    p.timing.tRFC = 280;   // 350 ns

    // Off-chip I/O dominates: ~15 pJ/byte on the channel versus ~1 pJ/byte
    // over TSVs; 8 KiB rows make activates expensive.
    p.energy.activateJ = 15.0_nJ;
    p.energy.readJPerByte = 6.0_pJ;
    p.energy.writeJPerByte = 6.6_pJ;
    p.energy.tsvJPerByte = 15.0_pJ;
    p.energy.backgroundWPerVault = 0.9;
    p.energy.refreshJPerVault = 120.0_nJ;

    p.org.numVaults = channels;
    p.org.banksPerVault = 8;
    p.org.rowBytes = 8_KiB;
    p.org.interleaveBytes = 64;
    p.org.capacityBytes = static_cast<std::uint64_t>(channels) * 4_GiB;
    p.org.linkBandwidth = p.peakInternalBandwidth();

    return p;
}

noc::MeshParams
mealibMeshParams()
{
    noc::MeshParams p;
    // One tile per vault (32 vaults) arranged as an 8x4 mesh.
    p.width = 8;
    p.height = 4;
    p.clock = 1.0_GHz;
    p.hopCycles = 3;
    p.linkBytesPerCycle = 16;
    // 32 nm constants chosen to land on the Table 5 NoC row:
    // 32 routers * ~3 mW = 0.095 W and 32 * 0.045 mm^2 = 1.44 mm^2.
    p.energyPerByteHop = 0.55_pJ;
    p.routerLeakageW = 0.095 / 32.0;
    p.routerAreaMm2 = 1.44 / 32.0;
    return p;
}

host::CpuParams
haswell4770kParams()
{
    host::CpuParams p;
    p.name = "haswell-i7-4770k";
    p.cores = 4;
    p.freq = 3.5_GHz;
    // The paper's footnote 1 quotes 112 GFLOPS peak at 3.5 GHz:
    // 4 cores x 3.5 GHz x 8 flops/cycle.
    p.flopsPerCycle = 8.0;
    p.memBandwidth = 25.6_GBps; // 2 x DDR3-1600 (Table 3)
    // Calibrated so a bandwidth-saturating 4-thread kernel draws ~48 W
    // (the paper's measured FFT package power).
    p.idleW = 16.0;
    p.perCoreActiveW = 8.0;
    p.stallPowerFactor = 0.6;
    p.llcBytes = 8_MiB;
    p.dram = ddr3Params(2);
    return p;
}

host::CpuParams
xeonPhi5110pParams()
{
    host::CpuParams p;
    p.name = "xeon-phi-5110p";
    p.cores = 60;
    p.freq = 1.0_GHz;
    p.flopsPerCycle = 32.0; // 512-bit SIMD, FMA
    p.memBandwidth = 320.0_GBps; // GDDR5 (Table 3)
    // The paper measures ~130 W on FFT; the card idles high.
    p.idleW = 88.0;
    p.perCoreActiveW = 0.7;
    p.stallPowerFactor = 0.8;
    p.llcBytes = 30_MiB; // distributed L2
    p.dram = ddr3Params(8); // stand-in channel group for energy bookkeeping
    p.dram.name = "gddr5-phi";
    return p;
}

accel::AccelConfig
accelDefaultConfig(accel::AccelKind kind)
{
    using accel::AccelKind;
    accel::AccelConfig c;
    switch (kind) {
      case AccelKind::AXPY:
      case AccelKind::DOT:
        // Streaming BLAS-1: wide but shallow datapaths.
        c.coresPerTile = 2;
        break;
      case AccelKind::GEMV:
        c.coresPerTile = 4;
        break;
      case AccelKind::SPMV:
        // Many independent gather/MAC lanes to tolerate random-access
        // latency; hence the large Table 5 area (14.17 mm^2).
        c.coresPerTile = 8;
        c.localMemKiB = 128;
        break;
      case AccelKind::RESMP:
        c.coresPerTile = 4;
        break;
      case AccelKind::FFT:
        // Radix pipelines with big ping-pong buffers (16.13 mm^2).
        c.coresPerTile = 8;
        c.localMemKiB = 256;
        c.blockElems = 8192;
        break;
      case AccelKind::RESHP:
        // Lives on the DRAM logic layer next to the reshape unit.
        c.coresPerTile = 1;
        break;
      default:
        panic("accelDefaultConfig: bad kind");
    }
    return c;
}

accel::SynthesisConstants
accelSynthesis(accel::AccelKind kind)
{
    using accel::AccelKind;
    // logicPowerW is chosen so that logic + simulated 3D-DRAM power at
    // the default configuration reproduces the Table 5 "Power" column
    // (which the paper states includes the DRAM power). areaMm2 is the
    // Table 5 area. computeUtil reflects how well the datapath streams:
    // regular kernels sustain ~90% of issue, gather-bound SPMV far less.
    switch (kind) {
      case AccelKind::AXPY:
        return {18.4, 1.38, 0.90};
      case AccelKind::DOT:
        return {18.4, 1.81, 0.90};
      case AccelKind::GEMV:
        return {18.6, 2.45, 0.90};
      case AccelKind::SPMV:
        return {11.5, 14.17, 0.25};
      case AccelKind::RESMP:
        return {6.0, 2.64, 0.50};
      case AccelKind::FFT:
        return {13.6, 16.13, 0.75};
      case AccelKind::RESHP:
        return {17.6, 0.0, 1.0}; // area accounted on the DRAM logic layer
      default:
        panic("accelSynthesis: bad kind");
    }
}

} // namespace mealib::hwmodel
