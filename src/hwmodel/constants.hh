/**
 * @file
 * Leaf constants of the hardware-model registry: the fixed Table 5
 * areas and the DRAM-logic-layer extras (Sec. 5.2). This header is
 * include-graph terminal (it includes nothing from the model layers) so
 * that dram/params.hh and accel/config.hh can alias these values
 * without creating a cycle with hwmodel/profile.hh, which includes
 * both.
 *
 * Every other Table 3/5/CACTI constant lives in hwmodel/presets.cc;
 * nothing outside src/hwmodel may define one (docs/MODEL.md).
 */

#ifndef MEALIB_HWMODEL_CONSTANTS_HH
#define MEALIB_HWMODEL_CONSTANTS_HH

namespace mealib::hwmodel {

/** TSV array area on the accelerator layer (Table 5). */
inline constexpr double kTsvAreaMm2 = 1.75;

/** Accelerator-layer area budget (HMC 2011 die, Sec. 5.2). */
inline constexpr double kAccelLayerAreaMm2 = 68.0;

/** DRAM-logic-layer (de)multiplexer + reshape-unit power (Sec. 5.2). */
inline constexpr double kLogicLayerMuxPowerW = 0.25;

/** DRAM-logic-layer (de)multiplexer + reshape-unit area (Sec. 5.2). */
inline constexpr double kLogicLayerMuxAreaMm2 = 0.45;

/** HMC 2011 logic-layer die area the extras are compared against. */
inline constexpr double kLogicLayerAreaMm2 = 68.0;

/** Fixed per-invocation accelerator overhead: descriptor copy plus the
 * START/DONE handshake over the host links (excludes the size-dependent
 * cache flush). Shared by the dispatch cost oracle and the runtime's
 * invocation accounting so both price offloads identically. */
inline constexpr double kHandshakeSeconds = 20.0e-6;

} // namespace mealib::hwmodel

#endif // MEALIB_HWMODEL_CONSTANTS_HH
