/**
 * @file
 * The machine-profile registry: the single source of truth for every
 * timing, power and energy constant of the reproduction (docs/MODEL.md).
 *
 * A MachineProfile bundles one complete evaluation machine: the host
 * processor of Table 3, its per-operation library-call efficiencies
 * (the calibration that substitutes for the paper's native
 * measurements), and the accelerated memory substrate (HMC stack +
 * accelerator-layer NoC). Named profiles `haswell4770k` and
 * `xeonphi5110p` are built in; the active profile is selected by the
 * MEALIB_MACHINE environment variable or `mealib-run --machine`, and
 * defaults to the Haswell machine — the paper's baseline.
 *
 * The legacy per-module preset factories (dram::hmcStack(),
 * host::haswell4770k(), noc::mealibMesh(), accel::defaultConfig()/
 * synthesis()) forward here, so the constants exist exactly once; the
 * model layers keep consuming plain parameter structs and stay
 * registry-agnostic.
 */

#ifndef MEALIB_HWMODEL_PROFILE_HH
#define MEALIB_HWMODEL_PROFILE_HH

#include <array>
#include <string>
#include <vector>

#include "accel/config.hh"
#include "accel/ops.hh"
#include "common/status.hh"
#include "dram/params.hh"
#include "host/cpu.hh"
#include "hwmodel/constants.hh"
#include "noc/mesh.hh"

namespace mealib::hwmodel {

/**
 * Per-operation host execution efficiencies. These substitute for the
 * paper's native measurement (we have no i7-4770K/RAPL); the factors
 * are calibrated against the paper's Fig. 9/10 bands (EXPERIMENTS.md).
 */
struct HostOpEfficiency
{
    double trafficFactor; //!< host DRAM traffic vs. accelerator traffic
    double memEff;        //!< fraction of peak bandwidth sustained
    double simdEff;       //!< fraction of peak issue sustained
    double parallelFraction;
};

inline constexpr std::size_t kNumAccelKinds =
    static_cast<std::size_t>(accel::AccelKind::kCount);

/** One complete evaluation machine (Table 3 column + substrate). */
struct MachineProfile
{
    std::string name; //!< canonical registry name

    // --- host side -----------------------------------------------------
    host::CpuParams cpu; //!< Table 3 host processor
    /** Library-call dispatch + thread-wakeup time per call. */
    double callOverheadSeconds = 5.0e-6;
    /** Vectors shorter than this leave the SIMD pipeline mostly empty
     * (ramp-up, horizontal reductions)... */
    std::uint64_t shortVectorElems = 256;
    /** ...and reach only this fraction of the streaming issue rate. */
    double shortVectorSimdFactor = 0.4;
    /** Per-operation efficiency calibration, indexed by AccelKind. */
    std::array<HostOpEfficiency, kNumAccelKinds> hostOps{};

    // --- accelerated substrate (shared by both machines) ---------------
    dram::DramParams stackDram; //!< the 3D stack under the accelerators
    noc::MeshParams mesh;       //!< accelerator-layer NoC

    // --- integrity & checkpoint pricing (docs/FAULTS.md) ---------------
    /** Streaming end-to-end checksum throughput (CRC32C-style unit on
     * the host / logic layer), bytes per second. */
    double checksumBytesPerSecond = 20.0e9;
    /** Checksum compute + compare energy per byte streamed. */
    double checksumJPerByte = 4.0e-12;
    /** Checkpoint snapshot write energy per journaled byte (a read +
     * write round trip through the stack, TSV crossings included). */
    double journalJPerByte = 15.0e-12;

    const HostOpEfficiency &
    opEfficiency(accel::AccelKind kind) const
    {
        return hostOps[static_cast<std::size_t>(kind)];
    }
};

// --- registry ----------------------------------------------------------

/**
 * Profile by name. Canonical names are `haswell4770k` and
 * `xeonphi5110p`; the short aliases `haswell` and `phi` (the
 * `mealib-run --machine` spellings) resolve to them. fatal() on an
 * unknown name, listing the known ones.
 */
const MachineProfile &profile(const std::string &name);

/** Whether @p name (canonical or alias) resolves to a profile. */
bool knownMachine(const std::string &name);

/** Canonical names of every registered profile. */
std::vector<std::string> profileNames();

/**
 * The process-wide active profile: MEALIB_MACHINE at first use (unset,
 * empty or unknown falls back to `haswell4770k`), overridable with
 * setActiveMachine(). RuntimeConfig's defaults, the dispatch cost
 * oracle and the app pipelines all derive from this.
 */
const MachineProfile &activeProfile();

/** Canonical name of the active profile. */
const std::string &activeMachineName();

/**
 * Switch the active profile (canonical name or alias). Returns
 * InvalidArgument for an unknown name, and InvalidArgument while any
 * pin (see pinActiveMachine) is held — a live session has already
 * captured the profile, and silently repricing its in-flight work
 * would desynchronize cost models from accounting. Switch before
 * constructing runtimes or sessions.
 */
Status setActiveMachine(const std::string &name);

/**
 * Pin the active profile against switching. Each `mealib::Session`
 * holds one pin for its lifetime so setActiveMachine() refuses while
 * any session is live. Pins nest; unpin exactly once per pin.
 */
void pinActiveMachine();

/** Release one pin taken with pinActiveMachine(). */
void unpinActiveMachine();

/** Outstanding pins (0 when no session is live). */
int activeMachinePins();

// --- preset parameter builders (the constants themselves) --------------

/** HMC-like 3D stack of Table 3 (32 vaults, 510 GB/s internal). */
dram::DramParams hmcStackParams();

/** DDR3-1600-like channel group (2 = Haswell/PSAS, 8 = MSAS). */
dram::DramParams ddr3Params(unsigned channels);

/** The 8x4 accelerator-layer mesh behind the Table 5 NoC row. */
noc::MeshParams mealibMeshParams();

/** Haswell i7-4770K as configured in Table 3 (112 GFLOPS, 25.6 GB/s). */
host::CpuParams haswell4770kParams();

/** Xeon Phi 5110P as configured in Table 3 (60 cores, 320 GB/s). */
host::CpuParams xeonPhi5110pParams();

/** Default accelerator configuration for Tables 2/5 and Figs. 9/10. */
accel::AccelConfig accelDefaultConfig(accel::AccelKind kind);

/** 32 nm synthesis constants for @p kind (values land on Table 5). */
accel::SynthesisConstants accelSynthesis(accel::AccelKind kind);

} // namespace mealib::hwmodel

#endif // MEALIB_HWMODEL_PROFILE_HH
