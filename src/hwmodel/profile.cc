#include "hwmodel/profile.hh"

#include <cstdlib>
#include <mutex>

#include "common/logging.hh"

namespace mealib::hwmodel {

namespace {

using accel::AccelKind;

constexpr std::size_t
idx(AccelKind kind)
{
    return static_cast<std::size_t>(kind);
}

/** Per-op calibration of the Haswell host (Fig. 9/10 bands). */
std::array<HostOpEfficiency, kNumAccelKinds>
haswellHostOps()
{
    std::array<HostOpEfficiency, kNumAccelKinds> t{};
    // Write-allocate turns 3 B/B into 4 B/B of bus traffic;
    // STREAM-like loops sustain ~60% of the 25.6 GB/s pair.
    t[idx(AccelKind::AXPY)] = {4.0 / 3.0, 0.60, 0.9, 0.95};
    // Pure reads, but the reduction and threading sync cost some
    // steady-state bandwidth.
    t[idx(AccelKind::DOT)] = {1.0, 0.50, 0.9, 0.90};
    t[idx(AccelKind::GEMV)] = {1.05, 0.60, 0.9, 0.95};
    // rgg's vector mostly fits the LLC: traffic is ~the matrix stream,
    // but the gather-dependent loads cap efficiency.
    t[idx(AccelKind::SPMV)] = {0.55, 0.35, 0.3, 0.90};
    // Windowed-sinc interpolation is compute-bound on the host: short
    // gather-heavy dots vectorize poorly.
    t[idx(AccelKind::RESMP)] = {1.2, 0.60, 0.30, 0.95};
    // Large 2D FFT: multiple blocked passes plus transposes push
    // traffic to ~2x the accelerator's two-pass scheme.
    t[idx(AccelKind::FFT)] = {2.0, 0.50, 0.35, 0.90};
    // Strided writes use a fraction of each cache line; blocked MKL
    // recovers some locality but efficiency stays low — hence the
    // paper's largest gain (88x).
    t[idx(AccelKind::RESHP)] = {1.5, 0.20, 1.0, 0.90};
    return t;
}

/**
 * Per-op calibration of the Xeon Phi host. The paper observes
 * (Sec. 5.1) that Xeon Phi barely beats — and often trails — Haswell on
 * these data sets: per-op efficiencies on the 320 GB/s card are poor
 * (60 in-order cores need far more parallel slack than these kernels
 * expose). Factors calibrated to the paper's observations: AXPY 2.23x
 * over Haswell, RESHP 0.024x.
 */
std::array<HostOpEfficiency, kNumAccelKinds>
xeonPhiHostOps()
{
    std::array<HostOpEfficiency, kNumAccelKinds> t{};
    t[idx(AccelKind::AXPY)] = {4.0 / 3.0, 0.11, 0.5, 0.98};
    t[idx(AccelKind::DOT)] = {1.0, 0.075, 0.5, 0.95};
    t[idx(AccelKind::GEMV)] = {1.05, 0.06, 0.5, 0.95};
    t[idx(AccelKind::SPMV)] = {0.55, 0.022, 0.2, 0.90};
    t[idx(AccelKind::RESMP)] = {1.2, 0.30, 0.012, 0.95};
    t[idx(AccelKind::FFT)] = {2.0, 0.065, 0.2, 0.90};
    // In-place strided transpose is pathological on the ring-based
    // in-order card: the paper measures 2.4% of Haswell.
    t[idx(AccelKind::RESHP)] = {1.5, 0.00045, 1.0, 0.90};
    return t;
}

MachineProfile
makeHaswellProfile()
{
    MachineProfile m;
    m.name = "haswell4770k";
    m.cpu = haswell4770kParams();
    m.callOverheadSeconds = 5.0e-6;
    m.hostOps = haswellHostOps();
    m.stackDram = hmcStackParams();
    m.mesh = mealibMeshParams();
    // SSE4.2 CRC32C sustains ~1 byte/cycle/core; one core at 3.5 GHz
    // with some pipelining overlap gives ~20 GB/s of verification
    // throughput at a few pJ/byte of core energy.
    m.checksumBytesPerSecond = 20.0e9;
    m.checksumJPerByte = 4.0e-12;
    // Journal write = stack-internal read + write (~8.4 pJ/B) plus TSV
    // and bookkeeping overheads.
    m.journalJPerByte = 15.0e-12;
    return m;
}

MachineProfile
makeXeonPhiProfile()
{
    MachineProfile m;
    m.name = "xeonphi5110p";
    m.cpu = xeonPhi5110pParams();
    // Library call dispatch + thread wakeup across 240 threads is far
    // heavier on the card than on the 4-core host.
    m.callOverheadSeconds = 100.0e-6;
    m.hostOps = xeonPhiHostOps();
    m.stackDram = hmcStackParams();
    m.mesh = mealibMeshParams();
    // The in-order cores checksum far slower per core but there are 60
    // of them; net throughput lands lower than Haswell's CRC32C unit
    // and costs more energy per byte on the wide ring.
    m.checksumBytesPerSecond = 8.0e9;
    m.checksumJPerByte = 9.0e-12;
    m.journalJPerByte = 15.0e-12;
    return m;
}

struct Registry
{
    MachineProfile haswell = makeHaswellProfile();
    MachineProfile xeonphi = makeXeonPhiProfile();
};

const Registry &
registry()
{
    static const Registry r;
    return r;
}

/** Canonical name for @p name, or nullptr if unknown. */
const MachineProfile *
lookup(const std::string &name)
{
    const Registry &r = registry();
    if (name == "haswell4770k" || name == "haswell")
        return &r.haswell;
    if (name == "xeonphi5110p" || name == "phi" || name == "xeonphi")
        return &r.xeonphi;
    return nullptr;
}

std::mutex activeMu;
int activePins = 0; // guarded by activeMu

const MachineProfile *&
activeSlot()
{
    static const MachineProfile *active = nullptr;
    return active;
}

const MachineProfile *
resolveInitialActive()
{
    const char *env = std::getenv("MEALIB_MACHINE");
    if (env != nullptr && env[0] != '\0') {
        if (const MachineProfile *p = lookup(env))
            return p;
        warn("MEALIB_MACHINE=", env, " is not a known machine; using ",
             "haswell4770k");
    }
    return &registry().haswell;
}

} // namespace

const MachineProfile &
profile(const std::string &name)
{
    const MachineProfile *p = lookup(name);
    if (p == nullptr) {
        std::string known;
        for (const std::string &n : profileNames())
            known += (known.empty() ? "" : ", ") + n;
        fatal("unknown machine profile '", name, "' (known: ", known,
              ")");
    }
    return *p;
}

bool
knownMachine(const std::string &name)
{
    return lookup(name) != nullptr;
}

std::vector<std::string>
profileNames()
{
    return {registry().haswell.name, registry().xeonphi.name};
}

const MachineProfile &
activeProfile()
{
    std::lock_guard<std::mutex> lock(activeMu);
    const MachineProfile *&slot = activeSlot();
    if (slot == nullptr)
        slot = resolveInitialActive();
    return *slot;
}

const std::string &
activeMachineName()
{
    return activeProfile().name;
}

Status
setActiveMachine(const std::string &name)
{
    const MachineProfile *p = lookup(name);
    if (p == nullptr) {
        std::string known;
        for (const std::string &n : profileNames())
            known += (known.empty() ? "" : ", ") + n;
        return Status::error(ErrorCode::InvalidArgument,
                             "unknown machine profile '" + name +
                                 "' (known: " + known + ")");
    }
    std::lock_guard<std::mutex> lock(activeMu);
    if (activePins > 0)
        return Status::error(
            ErrorCode::InvalidArgument,
            "cannot switch active machine to '" + name + "': " +
                std::to_string(activePins) +
                " live session(s) pin the current profile");
    activeSlot() = p;
    return Status{};
}

void
pinActiveMachine()
{
    std::lock_guard<std::mutex> lock(activeMu);
    ++activePins;
}

void
unpinActiveMachine()
{
    std::lock_guard<std::mutex> lock(activeMu);
    fatalIf(activePins <= 0, "unpinActiveMachine without a pin");
    --activePins;
}

int
activeMachinePins()
{
    std::lock_guard<std::mutex> lock(activeMu);
    return activePins;
}

} // namespace mealib::hwmodel
