#include "tdl/params.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace mealib::tdl {

namespace {

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    std::size_t b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

std::int64_t
parseInt(const std::string &v, const std::string &key)
{
    char *end = nullptr;
    std::int64_t x = std::strtoll(v.c_str(), &end, 0);
    fatalIf(end == nullptr || *end != '\0', "params: key '", key,
            "' expects an integer, got '", v, "'");
    return x;
}

double
parseFloat(const std::string &v, const std::string &key)
{
    char *end = nullptr;
    double x = std::strtod(v.c_str(), &end);
    fatalIf(end == nullptr || *end != '\0', "params: key '", key,
            "' expects a number, got '", v, "'");
    return x;
}

bool
parseBool(const std::string &v, const std::string &key)
{
    std::string s = lower(v);
    if (s == "true" || s == "1" || s == "yes")
        return true;
    if (s == "false" || s == "0" || s == "no")
        return false;
    fatal("params: key '", key, "' expects a boolean, got '", v, "'");
}

/** Parse "a, b, c, d" (1..4 components) into a stride array. */
void
parseStrides(const std::string &v, const std::string &key,
             std::array<std::int64_t, accel::kMaxLoopDims> &out)
{
    std::stringstream ss(v);
    std::string part;
    unsigned d = 0;
    while (std::getline(ss, part, ',')) {
        fatalIf(d >= accel::kMaxLoopDims, "params: key '", key,
                "' has more than ", accel::kMaxLoopDims, " strides");
        out[d++] = parseInt(trim(part), key);
    }
    fatalIf(d == 0, "params: key '", key, "' has no strides");
}

accel::OperandRef *
operandByName(accel::OpCall &c, const std::string &base)
{
    if (base == "in0")
        return &c.in0;
    if (base == "in1")
        return &c.in1;
    if (base == "in2")
        return &c.in2;
    if (base == "in3")
        return &c.in3;
    if (base == "out")
        return &c.out;
    return nullptr;
}

std::uint32_t
parseResampleKind(const std::string &v)
{
    std::string s = lower(v);
    if (s == "linear" || s == "0")
        return 0;
    if (s == "catmullrom" || s == "cubic" || s == "1")
        return 1;
    if (s == "sinc8" || s == "sinc" || s == "2")
        return 2;
    fatal("params: unknown resample kind '", v, "'");
}

bool
isPow2(std::uint64_t n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

void
validateCall(const accel::OpCall &c)
{
    using accel::AccelKind;
    fatalIf(c.n == 0, "params: n must be positive for ",
            accel::name(c.kind));
    switch (c.kind) {
      case AccelKind::GEMV:
      case AccelKind::RESHP:
        fatalIf(c.m == 0, "params: m must be positive for ",
                accel::name(c.kind));
        break;
      case AccelKind::SPMV:
        fatalIf(c.m == 0 || c.k == 0,
                "params: SPMV needs m (rows) and k (nnz)");
        break;
      case AccelKind::RESMP:
        fatalIf(c.m == 0, "params: RESMP needs m (output samples)");
        break;
      case AccelKind::FFT:
        fatalIf(!isPow2(c.n), "params: FFT n must be a power of two");
        fatalIf(c.k != 0 && !isPow2(c.k),
                "params: FFT k (rows) must be a power of two");
        fatalIf(!c.complexData, "params: FFT data must be complex");
        break;
      default:
        break;
    }
}

} // namespace

accel::AccelKind
kindFromName(const std::string &name)
{
    std::string s = lower(name);
    if (s == "axpy")
        return accel::AccelKind::AXPY;
    if (s == "dot")
        return accel::AccelKind::DOT;
    if (s == "gemv")
        return accel::AccelKind::GEMV;
    if (s == "spmv")
        return accel::AccelKind::SPMV;
    if (s == "resmp" || s == "resample")
        return accel::AccelKind::RESMP;
    if (s == "fft")
        return accel::AccelKind::FFT;
    if (s == "reshp" || s == "reshape")
        return accel::AccelKind::RESHP;
    fatal("tdl: unknown accelerator '", name, "'");
}

accel::OpCall
parseParams(accel::AccelKind kind, const std::string &text)
{
    accel::OpCall c;
    c.kind = kind;

    std::stringstream ss(text);
    std::string raw;
    while (std::getline(ss, raw)) {
        std::string line = raw;
        if (auto h = line.find('#'); h != std::string::npos)
            line = line.substr(0, h);
        line = trim(line);
        if (line.empty())
            continue;
        auto eq = line.find('=');
        fatalIf(eq == std::string::npos, "params: missing '=' in line '",
                raw, "'");
        std::string key = trim(line.substr(0, eq));
        std::string val = trim(line.substr(eq + 1));
        fatalIf(key.empty() || val.empty(),
                "params: malformed line '", raw, "'");

        // Operand keys: "<name>" for the base, "<name>.stride" for the
        // per-loop-dimension strides.
        std::string base = key;
        bool is_stride = false;
        if (auto dot = key.find('.'); dot != std::string::npos) {
            base = key.substr(0, dot);
            std::string field = key.substr(dot + 1);
            fatalIf(field != "stride", "params: unknown operand field '",
                    field, "'");
            is_stride = true;
        }
        if (accel::OperandRef *op = operandByName(c, base)) {
            if (is_stride)
                parseStrides(val, key, op->stride);
            else
                op->base =
                    static_cast<Addr>(parseInt(val, key));
            continue;
        }

        if (key == "n") {
            c.n = static_cast<std::uint64_t>(parseInt(val, key));
        } else if (key == "m") {
            c.m = static_cast<std::uint64_t>(parseInt(val, key));
        } else if (key == "k") {
            c.k = static_cast<std::uint64_t>(parseInt(val, key));
        } else if (key == "inc0") {
            c.inc0 = parseInt(val, key);
        } else if (key == "inc1") {
            c.inc1 = parseInt(val, key);
        } else if (key == "alpha") {
            c.alpha = static_cast<float>(parseFloat(val, key));
        } else if (key == "beta") {
            c.beta = static_cast<float>(parseFloat(val, key));
        } else if (key == "complex") {
            c.complexData = parseBool(val, key);
        } else if (key == "conj") {
            c.conjugate = parseBool(val, key);
        } else if (key == "dir") {
            std::int64_t d = parseInt(val, key);
            fatalIf(d != -1 && d != 1, "params: dir must be -1 or 1");
            c.fftDir = static_cast<std::int32_t>(d);
        } else if (key == "resample") {
            c.resampleKind = parseResampleKind(val);
        } else {
            fatal("params: unknown key '", key, "'");
        }
    }

    validateCall(c);
    return c;
}

std::string
formatParams(const accel::OpCall &c)
{
    std::ostringstream os;
    // max_digits10 so float scalars round-trip exactly through the file.
    os.precision(9);
    os << "# " << accel::name(c.kind) << " parameters\n";
    os << "n = " << c.n << "\n";
    if (c.m != 1)
        os << "m = " << c.m << "\n";
    if (c.k != 0)
        os << "k = " << c.k << "\n";
    if (c.inc0 != 1)
        os << "inc0 = " << c.inc0 << "\n";
    if (c.inc1 != 1)
        os << "inc1 = " << c.inc1 << "\n";
    if (c.alpha != 1.0f)
        os << "alpha = " << c.alpha << "\n";
    if (c.beta != 0.0f)
        os << "beta = " << c.beta << "\n";
    if (c.complexData)
        os << "complex = true\n";
    if (c.conjugate)
        os << "conj = true\n";
    if (c.kind == accel::AccelKind::FFT)
        os << "dir = " << c.fftDir << "\n";
    if (c.kind == accel::AccelKind::RESMP)
        os << "resample = " << c.resampleKind << "\n";

    auto emit = [&](const char *name, const accel::OperandRef &op) {
        os << name << " = " << op.base << "\n";
        bool any = false;
        for (auto s : op.stride)
            any = any || s != 0;
        if (any) {
            os << name << ".stride = ";
            for (unsigned d = 0; d < accel::kMaxLoopDims; ++d)
                os << op.stride[d]
                   << (d + 1 < accel::kMaxLoopDims ? ", " : "\n");
        }
    };
    emit("in0", c.in0);
    emit("in1", c.in1);
    emit("in2", c.in2);
    emit("in3", c.in3);
    emit("out", c.out);
    return os.str();
}

} // namespace mealib::tdl
