/**
 * @file
 * Tokens of the Task Description Language (paper Sec. 3.4).
 *
 * TDL describes sequences of accelerator invocations:
 *
 *   LOOP(count=128) {
 *     PASS(in=0x100000, out=0x500000) {
 *       COMP(acc=RESHP, params="reshape.para")
 *       COMP(acc=FFT, params="fft.para")
 *     }
 *   }
 *
 * The source-to-source compiler emits TDL strings plus parameter files;
 * the runtime compiles them into accelerator descriptors.
 */

#ifndef MEALIB_TDL_TOKEN_HH
#define MEALIB_TDL_TOKEN_HH

#include <cstdint>
#include <string>

namespace mealib::tdl {

/** Token kinds of the TDL grammar. */
enum class TokKind
{
    Ident,   //!< LOOP, PASS, COMP, acc, params, bare words
    Int,     //!< decimal or 0x hex integer
    Float,   //!< decimal number with a fractional part
    String,  //!< "quoted"
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Equals,
    End,     //!< end of input
};

/** One lexed token with source position for diagnostics. */
struct Token
{
    TokKind kind = TokKind::End;
    std::string text;       //!< identifier / string payload
    std::int64_t intVal = 0;
    double floatVal = 0.0;
    unsigned line = 0;
    unsigned col = 0;
};

/** Printable name of a token kind (for error messages). */
const char *tokKindName(TokKind kind);

} // namespace mealib::tdl

#endif // MEALIB_TDL_TOKEN_HH
