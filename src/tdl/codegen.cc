#include "tdl/codegen.hh"

#include <sstream>

#include "common/logging.hh"
#include "tdl/params.hh"
#include "tdl/parser.hh"

namespace mealib::tdl {

namespace {

void
emitPass(const TdlPass &pass, const ParamResolver &resolve,
         accel::DescriptorProgram &out)
{
    for (const TdlComp &comp : pass.comps) {
        accel::AccelKind kind = kindFromName(comp.acc);
        fatalIf(comp.paramsFile.empty(), "tdl codegen: COMP acc=",
                comp.acc, " has no params file");
        std::string text = resolve(comp.paramsFile);
        out.addComp(parseParams(kind, text));
    }
    out.addPassEnd();
}

} // namespace

accel::DescriptorProgram
codegen(const TdlProgram &prog, const ParamResolver &resolve)
{
    fatalIf(!resolve, "tdl codegen: null parameter resolver");
    accel::DescriptorProgram out;
    for (const TdlItem &item : prog.items) {
        if (item.isLoop) {
            // Count the body instructions (comps + pass-end markers).
            std::uint32_t body = 0;
            for (const TdlPass &p : item.loop.passes)
                body += static_cast<std::uint32_t>(p.comps.size()) + 1;
            out.addLoop(item.loop.loop, body);
            for (const TdlPass &p : item.loop.passes)
                emitPass(p, resolve, out);
        } else {
            emitPass(item.pass, resolve, out);
        }
    }
    out.validate();
    return out;
}

accel::DescriptorProgram
compileTdl(const std::string &source, const ParamResolver &resolve)
{
    return codegen(parse(source), resolve);
}

std::string
format(const TdlProgram &prog)
{
    std::ostringstream os;
    auto emit_pass = [&](const TdlPass &p, const char *indent) {
        os << indent << "PASS(";
        os << "in=" << p.inAddr << ", out=" << p.outAddr << ") {\n";
        for (const TdlComp &c : p.comps) {
            os << indent << "  COMP(acc=" << c.acc << ", params=\""
               << c.paramsFile << "\")\n";
        }
        os << indent << "}\n";
    };
    for (const TdlItem &item : prog.items) {
        if (item.isLoop) {
            os << "LOOP(dims=\"";
            for (unsigned d = 0; d < accel::kMaxLoopDims; ++d) {
                os << item.loop.loop.dims[d];
                if (d + 1 < accel::kMaxLoopDims)
                    os << "x";
            }
            os << "\") {\n";
            for (const TdlPass &p : item.loop.passes)
                emit_pass(p, "  ");
            os << "}\n";
        } else {
            emit_pass(item.pass, "");
        }
    }
    return os.str();
}

} // namespace mealib::tdl
