/**
 * @file
 * Hand-written lexer for TDL. '#' starts a comment to end of line.
 */

#ifndef MEALIB_TDL_LEXER_HH
#define MEALIB_TDL_LEXER_HH

#include <string>
#include <vector>

#include "tdl/token.hh"

namespace mealib::tdl {

/** Tokenize @p source; fatal() with line/column on bad input. */
std::vector<Token> lex(const std::string &source);

} // namespace mealib::tdl

#endif // MEALIB_TDL_LEXER_HH
