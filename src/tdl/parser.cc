#include "tdl/parser.hh"

#include <cstdlib>
#include <map>

#include "common/logging.hh"
#include "tdl/lexer.hh"

namespace mealib::tdl {

namespace {

/** Attribute value: int, float or string payload. */
struct AttrVal
{
    TokKind kind;
    std::int64_t i = 0;
    double f = 0.0;
    std::string s;
};

using AttrMap = std::map<std::string, AttrVal>;

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

    TdlProgram
    program()
    {
        TdlProgram prog;
        while (peek().kind != TokKind::End) {
            const Token &t = expect(TokKind::Ident, "LOOP or PASS");
            if (t.text == "LOOP") {
                TdlItem item;
                item.isLoop = true;
                item.loop = loop();
                prog.items.push_back(std::move(item));
            } else if (t.text == "PASS") {
                TdlItem item;
                item.pass = pass();
                prog.items.push_back(std::move(item));
            } else {
                fatal("tdl parse: expected LOOP or PASS, got '", t.text,
                      "' at line ", t.line);
            }
        }
        fatalIf(prog.items.empty(), "tdl parse: empty program");
        return prog;
    }

  private:
    const Token &
    peek() const
    {
        return toks_[pos_];
    }

    const Token &
    next()
    {
        return toks_[pos_++];
    }

    const Token &
    expect(TokKind kind, const char *what)
    {
        const Token &t = next();
        fatalIf(t.kind != kind, "tdl parse: expected ", what, ", got ",
                tokKindName(t.kind), " at line ", t.line, " col ", t.col);
        return t;
    }

    AttrMap
    attrs()
    {
        AttrMap map;
        expect(TokKind::LParen, "'('");
        if (peek().kind == TokKind::RParen) {
            next();
            return map;
        }
        while (true) {
            const Token &key = expect(TokKind::Ident, "attribute name");
            expect(TokKind::Equals, "'='");
            const Token &val = next();
            AttrVal v;
            v.kind = val.kind;
            switch (val.kind) {
              case TokKind::Int:
                v.i = val.intVal;
                v.f = static_cast<double>(val.intVal);
                break;
              case TokKind::Float:
                v.f = val.floatVal;
                break;
              case TokKind::String:
              case TokKind::Ident:
                v.s = val.text;
                break;
              default:
                fatal("tdl parse: bad attribute value at line ", val.line);
            }
            map[key.text] = v;
            if (peek().kind == TokKind::Comma) {
                next();
                continue;
            }
            break;
        }
        expect(TokKind::RParen, "')'");
        return map;
    }

    accel::LoopSpec
    loopSpec(const AttrMap &a, unsigned line)
    {
        accel::LoopSpec spec;
        auto count = a.find("count");
        auto dims = a.find("dims");
        fatalIf(count == a.end() && dims == a.end(),
                "tdl parse: LOOP needs count= or dims= at line ", line);
        if (count != a.end()) {
            fatalIf(count->second.kind != TokKind::Int ||
                        count->second.i <= 0,
                    "tdl parse: LOOP count must be a positive integer");
            spec.dims[0] = static_cast<std::uint32_t>(count->second.i);
        }
        if (dims != a.end()) {
            // dims="4x8x2" — up to kMaxLoopDims extents.
            const std::string &s = dims->second.s;
            std::size_t start = 0;
            unsigned d = 0;
            while (start < s.size()) {
                std::size_t x = s.find('x', start);
                std::string part = s.substr(
                    start, x == std::string::npos ? x : x - start);
                char *end = nullptr;
                long long v = std::strtoll(part.c_str(), &end, 0);
                fatalIf(end == nullptr || *end != '\0' || v <= 0,
                        "tdl parse: bad dims component '", part, "'");
                fatalIf(d >= accel::kMaxLoopDims,
                        "tdl parse: more than ", accel::kMaxLoopDims,
                        " loop dims");
                spec.dims[d++] = static_cast<std::uint32_t>(v);
                if (x == std::string::npos)
                    break;
                start = x + 1;
            }
        }
        return spec;
    }

    TdlLoop
    loop()
    {
        TdlLoop l;
        unsigned line = peek().line;
        l.loop = loopSpec(attrs(), line);
        expect(TokKind::LBrace, "'{'");
        while (peek().kind != TokKind::RBrace) {
            const Token &t = expect(TokKind::Ident, "PASS");
            fatalIf(t.text != "PASS",
                    "tdl parse: only PASS blocks may appear inside LOOP, "
                    "got '", t.text, "' at line ", t.line);
            l.passes.push_back(pass());
        }
        next(); // '}'
        fatalIf(l.passes.empty(), "tdl parse: empty LOOP body");
        return l;
    }

    TdlPass
    pass()
    {
        TdlPass p;
        if (peek().kind == TokKind::LParen) {
            AttrMap a = attrs();
            if (auto it = a.find("in"); it != a.end())
                p.inAddr = static_cast<std::uint64_t>(it->second.i);
            if (auto it = a.find("out"); it != a.end())
                p.outAddr = static_cast<std::uint64_t>(it->second.i);
        }
        expect(TokKind::LBrace, "'{'");
        while (peek().kind != TokKind::RBrace) {
            const Token &t = expect(TokKind::Ident, "COMP");
            fatalIf(t.text != "COMP",
                    "tdl parse: only COMP blocks may appear inside PASS, "
                    "got '", t.text, "' at line ", t.line);
            unsigned line = t.line;
            AttrMap a = attrs();
            TdlComp c;
            auto acc = a.find("acc");
            fatalIf(acc == a.end(),
                    "tdl parse: COMP needs acc= at line ", line);
            c.acc = acc->second.s;
            if (auto it = a.find("params"); it != a.end())
                c.paramsFile = it->second.s;
            p.comps.push_back(std::move(c));
        }
        next(); // '}'
        fatalIf(p.comps.empty(), "tdl parse: empty PASS body");
        return p;
    }

    std::vector<Token> toks_;
    std::size_t pos_ = 0;
};

} // namespace

TdlProgram
parse(const std::string &source)
{
    Parser p(lex(source));
    return p.program();
}

} // namespace mealib::tdl
