/**
 * @file
 * TDL abstract syntax: COMP / PASS / LOOP blocks (paper Sec. 3.4).
 */

#ifndef MEALIB_TDL_AST_HH
#define MEALIB_TDL_AST_HH

#include <string>
#include <vector>

#include "accel/ops.hh"

namespace mealib::tdl {

/** COMP block: one accelerator invocation. */
struct TdlComp
{
    std::string acc;        //!< accelerator name ("FFT", "DOT", ...)
    std::string paramsFile; //!< parameter file the PR is built from
};

/** PASS block: a chained datapath with its own input/output buffers. */
struct TdlPass
{
    std::uint64_t inAddr = 0;  //!< informational (paper: per-pass buffer)
    std::uint64_t outAddr = 0;
    std::vector<TdlComp> comps;
};

/** LOOP block: contained passes run for every loop index. */
struct TdlLoop
{
    accel::LoopSpec loop;
    std::vector<TdlPass> passes;
};

/** Top-level item: either a bare PASS or a LOOP of passes. */
struct TdlItem
{
    bool isLoop = false;
    TdlLoop loop;  //!< valid when isLoop
    TdlPass pass;  //!< valid when !isLoop
};

/** A parsed TDL program. */
struct TdlProgram
{
    std::vector<TdlItem> items;

    /** Total COMP count before loop expansion. */
    std::size_t
    compCount() const
    {
        std::size_t c = 0;
        for (const TdlItem &it : items) {
            if (it.isLoop) {
                for (const TdlPass &p : it.loop.passes)
                    c += p.comps.size();
            } else {
                c += it.pass.comps.size();
            }
        }
        return c;
    }
};

} // namespace mealib::tdl

#endif // MEALIB_TDL_AST_HH
