/**
 * @file
 * TDL-to-descriptor compilation: the step mealib_acc_plan performs when
 * it receives a TDL string plus parameter files from the source-to-
 * source compiler (paper Listing 2 / Sec. 3.4).
 */

#ifndef MEALIB_TDL_CODEGEN_HH
#define MEALIB_TDL_CODEGEN_HH

#include <functional>
#include <string>

#include "accel/descriptor.hh"
#include "tdl/ast.hh"

namespace mealib::tdl {

/**
 * Resolves a parameter-file name to its contents. The s2s compiler
 * normally hands the runtime an in-memory bundle; tests may read disk.
 */
using ParamResolver = std::function<std::string(const std::string &)>;

/** Compile a parsed TDL program into an accelerator descriptor. */
accel::DescriptorProgram codegen(const TdlProgram &prog,
                                 const ParamResolver &resolve);

/** Convenience: parse + codegen in one step. */
accel::DescriptorProgram compileTdl(const std::string &source,
                                    const ParamResolver &resolve);

/** Pretty-print a TDL program (round-trips through parse()). */
std::string format(const TdlProgram &prog);

} // namespace mealib::tdl

#endif // MEALIB_TDL_CODEGEN_HH
