#include "tdl/lexer.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"

namespace mealib::tdl {

const char *
tokKindName(TokKind kind)
{
    switch (kind) {
      case TokKind::Ident:
        return "identifier";
      case TokKind::Int:
        return "integer";
      case TokKind::Float:
        return "number";
      case TokKind::String:
        return "string";
      case TokKind::LParen:
        return "'('";
      case TokKind::RParen:
        return "')'";
      case TokKind::LBrace:
        return "'{'";
      case TokKind::RBrace:
        return "'}'";
      case TokKind::Comma:
        return "','";
      case TokKind::Equals:
        return "'='";
      case TokKind::End:
        return "end of input";
      default:
        return "?";
    }
}

std::vector<Token>
lex(const std::string &src)
{
    std::vector<Token> out;
    unsigned line = 1, col = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto make = [&](TokKind k) {
        Token t;
        t.kind = k;
        t.line = line;
        t.col = col;
        return t;
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            col = 1;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++col;
            ++i;
            continue;
        }
        if (c == '#') { // comment to end of line
            while (i < n && src[i] != '\n')
                ++i;
            continue;
        }

        Token t = make(TokKind::End);
        switch (c) {
          case '(':
            t.kind = TokKind::LParen;
            break;
          case ')':
            t.kind = TokKind::RParen;
            break;
          case '{':
            t.kind = TokKind::LBrace;
            break;
          case '}':
            t.kind = TokKind::RBrace;
            break;
          case ',':
            t.kind = TokKind::Comma;
            break;
          case '=':
            t.kind = TokKind::Equals;
            break;
          default:
            t.kind = TokKind::End; // resolved below
        }
        if (t.kind != TokKind::End) {
            out.push_back(t);
            ++i;
            ++col;
            continue;
        }

        if (c == '"') {
            t = make(TokKind::String);
            ++i;
            ++col;
            while (i < n && src[i] != '"') {
                fatalIf(src[i] == '\n', "tdl lex: unterminated string at "
                        "line ", t.line);
                t.text += src[i];
                ++i;
                ++col;
            }
            fatalIf(i >= n, "tdl lex: unterminated string at line ",
                    t.line);
            ++i; // closing quote
            ++col;
            out.push_back(t);
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '-' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            std::size_t start = i;
            if (c == '-')
                ++i;
            bool hex = i + 1 < n && src[i] == '0' &&
                       (src[i + 1] == 'x' || src[i + 1] == 'X');
            if (hex)
                i += 2;
            bool is_float = false;
            while (i < n &&
                   (std::isalnum(static_cast<unsigned char>(src[i])) ||
                    src[i] == '.')) {
                if (src[i] == '.' && !hex)
                    is_float = true;
                ++i;
            }
            std::string text = src.substr(start, i - start);
            t = make(is_float ? TokKind::Float : TokKind::Int);
            t.text = text;
            char *end = nullptr;
            if (is_float) {
                t.floatVal = std::strtod(text.c_str(), &end);
            } else {
                t.intVal = std::strtoll(text.c_str(), &end, 0);
                t.floatVal = static_cast<double>(t.intVal);
            }
            fatalIf(end == nullptr || *end != '\0',
                    "tdl lex: bad number '", text, "' at line ", t.line);
            col += static_cast<unsigned>(i - start);
            out.push_back(t);
            continue;
        }

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = i;
            while (i < n &&
                   (std::isalnum(static_cast<unsigned char>(src[i])) ||
                    src[i] == '_' || src[i] == '.')) {
                ++i;
            }
            t = make(TokKind::Ident);
            t.text = src.substr(start, i - start);
            col += static_cast<unsigned>(i - start);
            out.push_back(t);
            continue;
        }

        fatal("tdl lex: unexpected character '", c, "' at line ", line,
              " col ", col);
    }

    out.push_back(make(TokKind::End));
    return out;
}

} // namespace mealib::tdl
