/**
 * @file
 * Recursive-descent parser for TDL.
 *
 * Grammar:
 *   program := (loop | pass)*
 *   loop    := 'LOOP' '(' attrs ')' '{' pass+ '}'
 *   pass    := 'PASS' ('(' attrs ')')? '{' comp+ '}'
 *   comp    := 'COMP' '(' attrs ')'
 *   attrs   := attr (',' attr)*
 *   attr    := ident '=' (int | float | string | ident)
 *
 * LOOP attributes: count=<n> or dims="<a>x<b>x..." (up to 4 dims).
 * PASS attributes: in=<addr>, out=<addr> (informational).
 * COMP attributes: acc=<name>, params="<file>".
 */

#ifndef MEALIB_TDL_PARSER_HH
#define MEALIB_TDL_PARSER_HH

#include <string>

#include "tdl/ast.hh"

namespace mealib::tdl {

/** Parse TDL source; fatal() with location info on syntax errors. */
TdlProgram parse(const std::string &source);

} // namespace mealib::tdl

#endif // MEALIB_TDL_PARSER_HH
