/**
 * @file
 * Parameter-file format for TDL COMP blocks.
 *
 * The source-to-source compiler stores "the rest of the API parameters"
 * of each translated library call in a parameter file (paper Sec. 3.4,
 * e.g. reshape.para / fft.para). The format is line-oriented key = value
 * with '#' comments:
 *
 *   n = 256
 *   m = 128
 *   complex = true
 *   dir = -1
 *   in0 = 0x100000
 *   in0.stride = 2048, 0, 0, 0
 *   out = 0x500000
 */

#ifndef MEALIB_TDL_PARAMS_HH
#define MEALIB_TDL_PARAMS_HH

#include <string>

#include "accel/ops.hh"

namespace mealib::tdl {

/** Map an accelerator name ("FFT", case-insensitive) to its kind. */
accel::AccelKind kindFromName(const std::string &name);

/**
 * Parse a parameter file body into an OpCall for @p kind; fatal() on
 * unknown keys, malformed values, or per-kind validation failures
 * (e.g. FFT extents that are not powers of two).
 */
accel::OpCall parseParams(accel::AccelKind kind, const std::string &text);

/** Serialize an OpCall back to parameter-file text (round-trips). */
std::string formatParams(const accel::OpCall &call);

} // namespace mealib::tdl

#endif // MEALIB_TDL_PARAMS_HH
