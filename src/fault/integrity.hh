/**
 * @file
 * End-to-end operand integrity verification (docs/FAULTS.md).
 *
 * The hardware's own checks — link CRC, vault ECC — catch most
 * corruption, but not all of it: multi-bit flips aliasing to a valid
 * codeword, or corruption on a path the CRC does not cover, arrive
 * looking healthy. The integrity layer closes that gap the way
 * production storage/serving stacks do: the runtime computes a
 * checksum over each transfer's host-side operand intervals before
 * handing them to the accelerators and re-verifies after link
 * crossings and vault reads, so a FaultPlan's silent corruption
 * becomes a *detected* failure the retry ladder can absorb.
 *
 * Verification is not free: every pass streams the operand footprint
 * through the checksum unit. checksumCost() prices one pass from the
 * active machine profile's integrity constants (hwmodel/profile.hh);
 * the runtime posts the result to the EnergyLedger's `integrity` track.
 */

#ifndef MEALIB_FAULT_INTEGRITY_HH
#define MEALIB_FAULT_INTEGRITY_HH

#include <cstddef>
#include <cstdint>

#include "common/status.hh"
#include "common/units.hh"

namespace mealib::fault {

/**
 * FNV-1a 64-bit running checksum. Not cryptographic — it stands in for
 * the CRC32C/T10-DIF style end-to-end checksums real systems use, and
 * is deterministic across platforms so functional verification results
 * are bit-reproducible.
 */
class Checksum
{
  public:
    /** Fold @p n bytes at @p data into the running value. */
    void update(const void *data, std::size_t n);

    /** Current checksum value. */
    std::uint64_t value() const { return state_; }

  private:
    static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t kPrime = 0x100000001b3ull;
    std::uint64_t state_ = kOffsetBasis;
};

/** One-shot checksum over a byte range. */
std::uint64_t checksumBytes(const void *data, std::size_t n);

/** Per-transfer operand verification knobs (resolved against the
 * active machine profile by RuntimeConfig's constructor). */
struct IntegrityConfig
{
    /** Verify operand intervals end-to-end: source checksums computed
     * on the host before the transfer, re-checked after link crossings
     * and vault reads. Off by default — verification costs nothing and
     * detects nothing, exactly the pre-existing behavior. */
    bool verifyTransfers = false;

    /** Modeled checksum throughput, seconds per byte streamed. */
    double checksumSecondsPerByte = 0.0;

    /** Modeled checksum energy, joules per byte streamed. */
    double checksumJPerByte = 0.0;

    bool enabled() const { return verifyTransfers; }

    /** InvalidArgument on negative or non-finite pricing. */
    Status validate() const;
};

/** Modeled cost of one verification pass over @p bytes bytes. */
Cost checksumCost(const IntegrityConfig &cfg, double bytes);

} // namespace mealib::fault

#endif // MEALIB_FAULT_INTEGRITY_HH
