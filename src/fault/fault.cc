#include "fault/fault.hh"

#include <cmath>

#include "common/logging.hh"

namespace mealib::fault {

const char *
name(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::EccCorrectable:
        return "ecc_correctable";
      case FaultKind::EccUncorrectable:
        return "ecc_uncorrectable";
      case FaultKind::LinkCrc:
        return "link_crc";
      case FaultKind::CommandHang:
        return "command_hang";
      case FaultKind::ComputeTransient:
        return "compute_transient";
      case FaultKind::StackFailure:
        return "stack_failure";
      case FaultKind::SilentCorruption:
        return "silent_corruption";
      default:
        panic("name: bad fault kind");
    }
}

bool
transient(FaultKind kind)
{
    switch (kind) {
      case FaultKind::EccUncorrectable:
      case FaultKind::LinkCrc:
      case FaultKind::CommandHang:
      case FaultKind::ComputeTransient:
      case FaultKind::SilentCorruption:
        return true;
      default:
        return false;
    }
}

Status
FaultConfig::validate() const
{
    // A bad rate is a caller error the embedding system must be able to
    // survive (reject the config, keep serving) — report it as a
    // Status instead of killing the process.
    auto check = [](double rate, const char *what) {
        if (std::isnan(rate) || rate < 0.0 || rate > 1.0) {
            return Status::error(
                ErrorCode::InvalidArgument,
                std::string("fault config: ") + what + " rate " +
                    std::to_string(rate) + " outside [0, 1]");
        }
        return Status();
    };
    if (Status s = check(eccCorrectableRate, "ECC-correctable");
        !s.ok())
        return s;
    if (Status s = check(eccUncorrectableRate, "ECC-uncorrectable");
        !s.ok())
        return s;
    if (Status s = check(linkCrcRate, "link-CRC"); !s.ok())
        return s;
    if (Status s = check(hangRate, "hang"); !s.ok())
        return s;
    if (Status s = check(computeTransientRate, "compute-transient");
        !s.ok())
        return s;
    if (Status s = check(silentCorruptionRate, "silent-corruption");
        !s.ok())
        return s;
    return Status();
}

FaultModel::FaultModel(const FaultConfig &cfg) : cfg_(cfg)
{
    cfg_.validate().orThrow();
}

FaultPlan
FaultModel::roll(std::uint64_t command, unsigned attempt) const
{
    FaultPlan plan;
    if (!cfg_.enabled())
        return plan;

    // One private stream per (command, attempt): rolls do not depend on
    // how many other commands were submitted in between, so the same
    // seed injects the same faults regardless of queue interleaving.
    Rng rng(cfg_.seed ^ (command * 0x9e3779b97f4a7c15ull) ^
            (static_cast<std::uint64_t>(attempt) * 0xc2b2ae3d27d4eb4full));

    // Fixed draw order, one draw per source, so outcomes of one source
    // never shift another source's stream.
    const double u_ecc_c = rng.uniform();
    const double u_ecc_u = rng.uniform();
    const double u_crc = rng.uniform();
    const double u_hang = rng.uniform();
    const double u_comp = rng.uniform();
    const double u_frac = rng.uniform();

    if (u_ecc_c < cfg_.eccCorrectableRate)
        plan.eccCorrected = 1;
    if (u_hang < cfg_.hangRate) {
        plan.hang = true;
        return plan;
    }
    // First fatal transient wins; detection point is the same draw so
    // the failure cost is reproducible too.
    if (u_crc < cfg_.linkCrcRate)
        plan.failure = FaultKind::LinkCrc;
    else if (u_ecc_u < cfg_.eccUncorrectableRate)
        plan.failure = FaultKind::EccUncorrectable;
    else if (u_comp < cfg_.computeTransientRate)
        plan.failure = FaultKind::ComputeTransient;
    if (plan.failure != FaultKind::None)
        plan.failFraction = u_frac;

    // Drawn after every pre-existing source so arming silent corruption
    // never shifts the older sources' streams: a (seed, workload) pair
    // injects the same ECC/CRC/hang/transient faults it always did.
    const double u_silent = rng.uniform();
    if (plan.failure == FaultKind::None &&
        u_silent < cfg_.silentCorruptionRate) {
        plan.silent = true;
        plan.failFraction = u_frac; // corruption point, for bookkeeping
    }
    return plan;
}

} // namespace mealib::fault
