#include "fault/fault.hh"

#include "common/logging.hh"

namespace mealib::fault {

const char *
name(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::EccCorrectable:
        return "ecc_correctable";
      case FaultKind::EccUncorrectable:
        return "ecc_uncorrectable";
      case FaultKind::LinkCrc:
        return "link_crc";
      case FaultKind::CommandHang:
        return "command_hang";
      case FaultKind::ComputeTransient:
        return "compute_transient";
      case FaultKind::StackFailure:
        return "stack_failure";
      default:
        panic("name: bad fault kind");
    }
}

bool
transient(FaultKind kind)
{
    switch (kind) {
      case FaultKind::EccUncorrectable:
      case FaultKind::LinkCrc:
      case FaultKind::CommandHang:
      case FaultKind::ComputeTransient:
        return true;
      default:
        return false;
    }
}

void
FaultConfig::validate() const
{
    auto check = [](double rate, const char *what) {
        fatalIf(rate < 0.0 || rate > 1.0, "fault config: ", what,
                " rate ", rate, " outside [0, 1]");
    };
    check(eccCorrectableRate, "ECC-correctable");
    check(eccUncorrectableRate, "ECC-uncorrectable");
    check(linkCrcRate, "link-CRC");
    check(hangRate, "hang");
    check(computeTransientRate, "compute-transient");
}

FaultModel::FaultModel(const FaultConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

FaultPlan
FaultModel::roll(std::uint64_t command, unsigned attempt) const
{
    FaultPlan plan;
    if (!cfg_.enabled())
        return plan;

    // One private stream per (command, attempt): rolls do not depend on
    // how many other commands were submitted in between, so the same
    // seed injects the same faults regardless of queue interleaving.
    Rng rng(cfg_.seed ^ (command * 0x9e3779b97f4a7c15ull) ^
            (static_cast<std::uint64_t>(attempt) * 0xc2b2ae3d27d4eb4full));

    // Fixed draw order, one draw per source, so outcomes of one source
    // never shift another source's stream.
    const double u_ecc_c = rng.uniform();
    const double u_ecc_u = rng.uniform();
    const double u_crc = rng.uniform();
    const double u_hang = rng.uniform();
    const double u_comp = rng.uniform();
    const double u_frac = rng.uniform();

    if (u_ecc_c < cfg_.eccCorrectableRate)
        plan.eccCorrected = 1;
    if (u_hang < cfg_.hangRate) {
        plan.hang = true;
        return plan;
    }
    // First fatal transient wins; detection point is the same draw so
    // the failure cost is reproducible too.
    if (u_crc < cfg_.linkCrcRate)
        plan.failure = FaultKind::LinkCrc;
    else if (u_ecc_u < cfg_.eccUncorrectableRate)
        plan.failure = FaultKind::EccUncorrectable;
    else if (u_comp < cfg_.computeTransientRate)
        plan.failure = FaultKind::ComputeTransient;
    if (plan.failure != FaultKind::None)
        plan.failFraction = u_frac;
    return plan;
}

} // namespace mealib::fault
