#include "fault/integrity.hh"

#include <cmath>

namespace mealib::fault {

void
Checksum::update(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = state_;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kPrime;
    }
    state_ = h;
}

std::uint64_t
checksumBytes(const void *data, std::size_t n)
{
    Checksum c;
    c.update(data, n);
    return c.value();
}

Status
IntegrityConfig::validate() const
{
    auto bad = [](double v) { return !std::isfinite(v) || v < 0.0; };
    if (bad(checksumSecondsPerByte)) {
        return Status::error(ErrorCode::InvalidArgument,
                             "integrity config: checksum seconds/byte "
                             "must be finite and >= 0");
    }
    if (bad(checksumJPerByte)) {
        return Status::error(ErrorCode::InvalidArgument,
                             "integrity config: checksum joules/byte "
                             "must be finite and >= 0");
    }
    return Status();
}

Cost
checksumCost(const IntegrityConfig &cfg, double bytes)
{
    Cost c;
    c.seconds = bytes * cfg.checksumSecondsPerByte;
    c.joules = bytes * cfg.checksumJPerByte;
    return c;
}

} // namespace mealib::fault
