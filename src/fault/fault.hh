/**
 * @file
 * Deterministic fault injection for the MEALib runtime.
 *
 * The fault layer makes hardware misbehavior a first-class, reproducible
 * simulator input: vault ECC errors in the DRAM stacks (correctable and
 * uncorrectable), CRC errors on the inter-stack SerDes links, accelerator
 * command hangs and transient compute faults, and scripted permanent
 * stack failures. Every decision is pre-rolled from a seed and the
 * command's global submission index, so a given (seed, config, workload)
 * triple always injects exactly the same faults — failure scenarios are
 * regression-testable, and availability/EDP trade-offs under failure can
 * be swept like any other design parameter (bench/ablation_faults).
 *
 * The model is split the same way the rest of the simulator is:
 * FaultModel decides *what* goes wrong (and records a FaultEvent log);
 * the runtime decides what it *costs* (retry backoff, watchdog timeouts,
 * host fallback — docs/FAULTS.md) using penalty helpers owned by the
 * component models (dram::Stack ECC penalties, noc::Mesh CRC replay).
 */

#ifndef MEALIB_FAULT_FAULT_HH
#define MEALIB_FAULT_FAULT_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hh"
#include "common/status.hh"

namespace mealib::fault {

/** What kind of hardware fault was injected. */
enum class FaultKind
{
    None = 0,
    EccCorrectable,   //!< vault ECC corrected a flipped bit (latency only)
    EccUncorrectable, //!< vault ECC detected an unrecoverable word
    LinkCrc,          //!< inter-stack SerDes packet failed its CRC
    CommandHang,      //!< accelerator command never raises DONE
    ComputeTransient, //!< PE produced a detectably wrong result
    StackFailure,     //!< permanent: the whole stack stops answering
    SilentCorruption, //!< corruption that escaped link CRC / vault ECC
};

/** Printable fault name ("ecc_correctable", "link_crc", ...). */
const char *name(FaultKind kind);

/** @return whether a retry can possibly clear @p kind. */
bool transient(FaultKind kind);

/** Sentinel for "no scripted stack failure". */
inline constexpr unsigned kNoStack =
    std::numeric_limits<unsigned>::max();

/** Injection rates and scripted failures. All-zero = disabled. */
struct FaultConfig
{
    std::uint64_t seed = 0; //!< base seed for every roll

    // Per-attempt probabilities, each rolled independently.
    double eccCorrectableRate = 0.0;   //!< corrected ECC hit
    double eccUncorrectableRate = 0.0; //!< uncorrectable ECC word
    double linkCrcRate = 0.0;          //!< SerDes CRC failure
    double hangRate = 0.0;             //!< command hang (watchdog case)
    double computeTransientRate = 0.0; //!< transient PE fault
    /** Corruption that escapes both the link CRC and the vault ECC:
     * invisible to the hardware's own checks, detectable only by the
     * runtime's end-to-end operand verification (docs/FAULTS.md). */
    double silentCorruptionRate = 0.0;

    /** Scripted permanent failure: stack @c failStack dies right before
     * global command @c failStackAfter is submitted (kNoStack = never).
     * Scripting the death point keeps whole-stack-loss scenarios
     * deterministic across runs and after resetAccounting(). */
    unsigned failStack = kNoStack;
    std::uint64_t failStackAfter = 0;

    /** @return whether any fault source is active. */
    bool
    enabled() const
    {
        return eccCorrectableRate > 0.0 || eccUncorrectableRate > 0.0 ||
               linkCrcRate > 0.0 || hangRate > 0.0 ||
               computeTransientRate > 0.0 ||
               silentCorruptionRate > 0.0 || failStack != kNoStack;
    }

    /** InvalidArgument if any rate is outside [0, 1] or not finite. */
    Status validate() const;
};

/** One injected fault, as recorded in the model's history log. */
struct FaultEvent
{
    FaultKind kind = FaultKind::None;
    unsigned stack = 0;           //!< stack the command was placed on
    std::uint64_t command = 0;    //!< global submission index
    unsigned attempt = 0;         //!< 0 = first try, 1.. = retries
};

/**
 * Pre-rolled outcome of one execution attempt of one command: how many
 * correctable ECC hits slow it down, whether it hangs, and — if it
 * fails — which transient fault killed it and how far through the
 * command's span the failure was detected.
 */
struct FaultPlan
{
    unsigned eccCorrected = 0;         //!< corrected hits (latency only)
    bool hang = false;                 //!< DONE never arrives
    FaultKind failure = FaultKind::None; //!< fatal transient, or None
    double failFraction = 0.0;         //!< span fraction before detection
    /** Corruption neither the CRC nor the ECC noticed: the attempt
     * "succeeds" as far as the hardware can tell. Only end-to-end
     * operand verification turns this into a detected failure. */
    bool silent = false;

    /** @return whether the attempt completes as far as the hardware's
     * own checks can tell (a silent corruption still "succeeds"). */
    bool
    succeeds() const
    {
        return !hang && failure == FaultKind::None;
    }
};

/**
 * The seeded fault injector. Stateless across commands except for the
 * history log: every roll is a pure function of (seed, command index,
 * attempt), so injection is independent of scheduling order and
 * bit-reproducible.
 */
class FaultModel
{
  public:
    explicit FaultModel(const FaultConfig &cfg);

    bool enabled() const { return cfg_.enabled(); }
    const FaultConfig &config() const { return cfg_; }

    /** Roll attempt @p attempt of global command @p command. */
    FaultPlan roll(std::uint64_t command, unsigned attempt) const;

    /** Append one acted-on fault to the history log. */
    void record(const FaultEvent &event) { history_.push_back(event); }

    /** Every fault the runtime acted on, in injection order. */
    const std::vector<FaultEvent> &history() const { return history_; }

    /** Drop the history log (resetAccounting replays from scratch). */
    void reset() { history_.clear(); }

  private:
    FaultConfig cfg_;
    std::vector<FaultEvent> history_;
};

} // namespace mealib::fault

#endif // MEALIB_FAULT_FAULT_HH
